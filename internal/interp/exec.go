package interp

import (
	"context"
	"fmt"
	"math"

	"dae/internal/fault"
	"dae/internal/ir"
	"dae/internal/mem"
)

// val is a runtime value. The statically known IR type selects which field is
// meaningful; bools live in i as 0/1.
type val struct {
	i int64
	f float64
	p ptr
}

// Value is a public argument/result for Env.Call.
type Value struct {
	v val
	k valKind
}

type valKind uint8

const (
	intVal valKind = iota
	floatVal
	ptrVal
	voidVal
)

// Int wraps an integer argument.
func Int(v int64) Value { return Value{v: val{i: v}, k: intVal} }

// Float wraps a float argument.
func Float(v float64) Value { return Value{v: val{f: v}, k: floatVal} }

// Ptr wraps an array argument.
func Ptr(s *Seg) Value { return Value{v: val{p: ptr{seg: s}}, k: ptrVal} }

// Int64 returns the integer payload.
func (v Value) Int64() int64 { return v.v.i }

// Float64 returns the float payload.
func (v Value) Float64() float64 { return v.v.f }

// IsInt reports whether v wraps an integer.
func (v Value) IsInt() bool { return v.k == intVal }

// Segment returns the segment behind a pointer value, or nil for scalars.
// Static analyses use segment identity to decide whether two task
// invocations share an array.
func (v Value) Segment() *Seg {
	if v.k != ptrVal {
		return nil
	}
	return v.v.p.seg
}

// Tracer observes every data-memory access the interpreted program performs.
// Addresses are byte addresses in the simulated address space.
type Tracer interface {
	// Load is a blocking read of the element at addr.
	Load(addr int64)
	// Store is a write of the element at addr.
	Store(addr int64)
	// Prefetch is a non-binding prefetch of the element at addr.
	Prefetch(addr int64)
}

// Counts tallies executed instructions by class; the CPU timing model turns
// these into cycles.
type Counts struct {
	Int        int64 // integer ALU ops (arith, compare, select, cast)
	Float      int64 // FP add/sub/mul
	FloatDiv   int64 // FP divide
	MathOps    int64 // sqrt/sin/... intrinsics
	Loads      int64
	Stores     int64
	Prefetches int64
	Branches   int64
	GEPs       int64 // address computations
	Calls      int64
}

// Total returns the total dynamic instruction count.
func (c Counts) Total() int64 {
	return c.Int + c.Float + c.FloatDiv + c.MathOps + c.Loads + c.Stores +
		c.Prefetches + c.Branches + c.GEPs + c.Calls
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Int += other.Int
	c.Float += other.Float
	c.FloatDiv += other.FloatDiv
	c.MathOps += other.MathOps
	c.Loads += other.Loads
	c.Stores += other.Stores
	c.Prefetches += other.Prefetches
	c.Branches += other.Branches
	c.GEPs += other.GEPs
	c.Calls += other.Calls
}

// PrefetchHook observes prefetch events with their originating static
// instruction, for profile-guided refinement (§6.2.3 of the paper). When a
// hook is installed it replaces the plain tracer for prefetch events.
type PrefetchHook func(src ir.Instr, addr int64)

// Env executes compiled functions. It is not safe for concurrent use; the
// multicore runtime gives each simulated core its own Env. Distinct Envs may
// share one Program, including from different goroutines.
type Env struct {
	prog     *Program
	tracer   Tracer
	prefHook PrefetchHook
	counts   Counts
	// engine selects the execution engine: the flat register-bytecode VM
	// (default) or the original compiled-op interpreter, kept as a
	// differential oracle. Both produce byte-identical traces and faults.
	engine Engine
	// hier, when non-nil, receives memory events directly from the bytecode
	// VM's memory instructions (the fused cache probe), bypassing the Tracer
	// interface dispatch. The tree engine ignores it and keeps using tracer.
	hier *mem.Hierarchy
	// stats, when non-nil, accumulates the dynamic op and op-pair histogram.
	// Only the tree engine records (it executes the unfused op stream the
	// superinstruction selection is justified against).
	stats *OpStats
	// free is the frame freelist: frames are pushed back on function return,
	// so steady-state calls (including the opCall hot path) allocate nothing.
	free []*frame
	// bfree is the bytecode VM's frame freelist (see bframe).
	bfree []*bframe
	// memo caches Program.compiled results per Env, keeping the top-level
	// Call path off the Program's shared snapshot entirely.
	memo map[*ir.Func]*code
	// bmemo is memo's bytecode counterpart.
	bmemo map[*ir.Func]*bcode
	// callArgs is the reusable top-level Call argument buffer (the callee
	// copies arguments into its registers at frame entry).
	callArgs []val
	// ctx, when non-nil, is polled every ctxCheckInterval steps; a canceled
	// context aborts the current Call with a fault.KindTimeout error.
	ctx context.Context
	// maxSteps, when positive, is the per-Call step (fuel) budget; exceeding
	// it aborts with fault.ErrStepBudget naming the current instruction.
	maxSteps int64
	// steps counts executed operations since the last top-level Call across
	// all nested frames; checkAt is the next step count at which the budget
	// and context are inspected.
	steps   int64
	checkAt int64
}

// NewEnv returns an execution environment over prog. tracer may be nil.
func NewEnv(prog *Program, tracer Tracer) *Env {
	return &Env{prog: prog, tracer: tracer}
}

// frame is the reusable per-call state of run: the register file, the phi
// parallel-copy scratch, the frame-local alloca segments, and the argument
// buffer for outgoing opCall invocations. Seg structs are embedded so alloca
// pointers (&f.segF) stay valid for the frame's lifetime.
type frame struct {
	regs []val
	tmp  []val
	segF Seg
	segI Seg
	args []val
}

// getFrame pops (or creates) a frame and sizes it for c. Registers and stack
// slots are zeroed so reuse is observationally identical to fresh make()
// allocation — traces stay byte-identical to the unpooled interpreter.
func (e *Env) getFrame(c *code) *frame {
	var f *frame
	if n := len(e.free); n > 0 {
		f = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		f = &frame{segF: Seg{Elem: FloatElem, Stack: true}, segI: Seg{Elem: IntElem, Stack: true}}
	}
	if cap(f.regs) < c.nregs {
		f.regs = make([]val, c.nregs)
	} else {
		f.regs = f.regs[:c.nregs]
		clear(f.regs)
	}
	if cap(f.tmp) < c.maxMoves {
		f.tmp = make([]val, c.maxMoves)
	} else {
		f.tmp = f.tmp[:c.maxMoves]
	}
	if cap(f.segF.F) < c.nStackF {
		f.segF.F = make([]float64, c.nStackF)
	} else {
		f.segF.F = f.segF.F[:c.nStackF]
		clear(f.segF.F)
	}
	if cap(f.segI.I) < c.nStackI {
		f.segI.I = make([]int64, c.nStackI)
	} else {
		f.segI.I = f.segI.I[:c.nStackI]
		clear(f.segI.I)
	}
	return f
}

func (e *Env) putFrame(f *frame) { e.free = append(e.free, f) }

// compiledMemo resolves f through the per-Env memo, falling back to the
// Program's immutable snapshot (lock-free in steady state).
func (e *Env) compiledMemo(f *ir.Func) (*code, error) {
	if c, ok := e.memo[f]; ok {
		return c, nil
	}
	c, err := e.prog.compiled(f)
	if err != nil {
		return nil, err
	}
	if e.memo == nil {
		e.memo = make(map[*ir.Func]*code)
	}
	e.memo[f] = c
	return c, nil
}

// bytecodeMemo is compiledMemo for the bytecode engine.
func (e *Env) bytecodeMemo(f *ir.Func) (*bcode, error) {
	if b, ok := e.bmemo[f]; ok {
		return b, nil
	}
	b, err := e.prog.bytecode(f)
	if err != nil {
		return nil, err
	}
	if e.bmemo == nil {
		e.bmemo = make(map[*ir.Func]*bcode)
	}
	e.bmemo[f] = b
	return b, nil
}

// Counts returns the instruction counts accumulated since the last Reset.
func (e *Env) Counts() Counts { return e.counts }

// ResetCounts clears the instruction counters (used between task phases).
func (e *Env) ResetCounts() { e.counts = Counts{} }

// SetTracer replaces the tracer.
func (e *Env) SetTracer(t Tracer) { e.tracer = t }

// SetEngine selects the execution engine. Prepared handles returned earlier
// keep the engine they were prepared with.
func (e *Env) SetEngine(eng Engine) { e.engine = eng }

// EngineKind returns the engine the Env executes with.
func (e *Env) EngineKind() Engine { return e.engine }

// SetHierarchy installs (or clears, with nil) the fused cache probe: the
// bytecode VM's memory instructions feed h.Access directly, skipping the
// per-event Tracer interface dispatch. The event stream is identical to
// routing a Tracer adapter over the same hierarchy. While set, the tracer is
// not consulted for bytecode-engine memory events (the tree engine keeps
// using the tracer); the PrefetchHook still takes precedence for prefetches.
func (e *Env) SetHierarchy(h *mem.Hierarchy) { e.hier = h }

// SetOpStats installs (or clears, with nil) the dynamic op-histogram
// collector. Only the tree engine records into it: the histogram's purpose
// is to measure the unfused op stream that justifies the bytecode engine's
// superinstruction selection.
func (e *Env) SetOpStats(s *OpStats) { e.stats = s }

// SetPrefetchHook installs (or clears, with nil) a per-instruction prefetch
// observer; while set, it receives prefetch events instead of the tracer.
func (e *Env) SetPrefetchHook(h PrefetchHook) { e.prefHook = h }

// SetContext installs a cancellation context, polled every ctxCheckInterval
// executed operations. When ctx expires, the in-flight Call returns a
// fault.KindTimeout error carrying the function and instruction it stopped
// at. A nil ctx (the default) disables the polling entirely.
func (e *Env) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // context.Background(): nothing to poll
	}
	e.ctx = ctx
}

// SetMaxSteps installs a per-Call step (fuel) budget: a Call that executes
// more than n operations — across all nested frames — aborts with a
// fault.ErrStepBudget error naming the function and instruction it stopped
// at. n <= 0 removes the budget.
func (e *Env) SetMaxSteps(n int64) { e.maxSteps = n }

// Steps returns the operations executed by the current (or last) Call.
func (e *Env) Steps() int64 { return e.steps }

// ctxCheckInterval is how many executed operations separate context polls;
// at simulator speeds this bounds cancellation latency well below 1 ms while
// keeping the poll off the per-op hot path.
const ctxCheckInterval = 1 << 15

// armCheck computes the next step count at which exec must leave the hot
// loop: the budget boundary or the next context poll, whichever is sooner.
func (e *Env) armCheck() {
	e.checkAt = int64(math.MaxInt64)
	if e.maxSteps > 0 {
		e.checkAt = e.maxSteps
	}
	if e.ctx != nil {
		if next := e.steps + ctxCheckInterval; next < e.checkAt {
			e.checkAt = next
		}
	}
}

// stepCheck runs at budget/poll boundaries: it raises the typed fault when
// the budget is exhausted or the context is done, and re-arms otherwise.
// Both engines call it with the function name and the IR instruction about
// to execute, so budget and timeout faults are byte-identical across them.
func (e *Env) stepCheck(fname string, src ir.Instr) error {
	if e.maxSteps > 0 && e.steps >= e.maxSteps {
		return &fault.Error{
			Kind: fault.KindStepBudget,
			Func: fname,
			Pos:  instrPos(src),
			Msg:  fmt.Sprintf("interp: exceeded step budget of %d operations", e.maxSteps),
		}
	}
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return &fault.Error{Kind: fault.KindTimeout, Func: fname, Pos: instrPos(src), Err: err}
		}
	}
	e.armCheck()
	return nil
}

// instrPos renders the position of an executed operation: its basic block
// and the originating IR instruction.
func instrPos(src ir.Instr) string {
	if src == nil {
		return ""
	}
	if b := src.Parent(); b != nil {
		return "%" + b.Name + ": " + ir.FormatInstr(src)
	}
	return ir.FormatInstr(src)
}

// trap builds a typed execution-fault error at src.
func trap(kind fault.TrapKind, fname string, src ir.Instr, format string, args ...any) error {
	return fault.NewTrap(kind, fname, instrPos(src), format, args...)
}

// memTrap classifies a failed dereference: nil segments are nil-deref traps,
// everything else is out-of-bounds, named with segment, offset, and length.
func memTrap(fname string, src ir.Instr, what string, p ptr) error {
	if p.seg == nil {
		return trap(fault.TrapNilDeref, fname, src, "interp: %s through nil segment", what)
	}
	return trap(fault.TrapOutOfBounds, fname, src, "interp: %s out of bounds (seg=%s off=%d len=%d)",
		what, segName(p.seg), p.off, p.seg.Len())
}

// Call executes function name with args. Array arguments are passed with
// Ptr, scalars with Int/Float. The configured engine runs the body; both
// engines produce identical results, traces, counts and faults.
func (e *Env) Call(f *ir.Func, args ...Value) (Value, error) {
	if e.engine == EngineTree {
		return e.callTree(f, args...)
	}
	return e.callBytecode(f, args...)
}

// callTree is Call on the tree (compiled-op) engine.
func (e *Env) callTree(f *ir.Func, args ...Value) (Value, error) {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return Value{}, &fault.Error{Kind: fault.KindTimeout, Func: f.Name, Err: err}
		}
	}
	c, err := e.compiledMemo(f)
	if err != nil {
		return Value{}, err
	}
	e.steps = 0
	e.armCheck()
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("interp: call @%s with %d args, want %d", f.Name, len(args), len(f.Params))
	}
	if cap(e.callArgs) < len(args) {
		e.callArgs = make([]val, len(args))
	}
	vs := e.callArgs[:len(args)]
	for i, a := range args {
		vs[i] = a.v
	}
	out, err := e.run(c, vs)
	if err != nil {
		return Value{}, err
	}
	return retValue(f, out), nil
}

// retValue wraps an interpreter result in the public Value kind selected by
// the function's return type.
func retValue(f *ir.Func, out val) Value {
	k := voidVal
	switch {
	case f.RetType.IsInt() || f.RetType.IsBool():
		k = intVal
	case f.RetType.IsFloat():
		k = floatVal
	}
	return Value{v: out, k: k}
}

// run executes c in a pooled frame. The frame is returned to the freelist on
// every exit path: nothing escapes it — TaskC functions return scalars, so
// the result value never aliases the recycled stack segments.
func (e *Env) run(c *code, args []val) (val, error) {
	fr := e.getFrame(c)
	v, err := e.exec(c, fr, args)
	e.putFrame(fr)
	return v, err
}

func (e *Env) exec(c *code, fr *frame, args []val) (val, error) {
	regs := fr.regs
	for i, r := range c.params {
		regs[r] = args[i]
	}
	for _, ci := range c.consts {
		regs[ci.reg] = ci.v
	}
	// Frame-local stack segments for allocas. They model registers/stack, so
	// they are marked Stack and produce no memory events.
	for _, a := range c.allocas {
		if a.elem == FloatElem {
			regs[a.reg] = val{p: ptr{seg: &fr.segF, off: a.slot}}
		} else {
			regs[a.reg] = val{p: ptr{seg: &fr.segI, off: a.slot}}
		}
	}

	// Phi parallel-copy scratch: sized for the widest move list so that
	// cyclic copies (swaps) read all sources before writing any destination.
	tmp := fr.tmp
	cnt := &e.counts
	ops := c.ops
	pc := 0
	prev := -1 // previous executed op kind, for the op-pair histogram
	for pc < len(ops) {
		op := &ops[pc]
		e.steps++
		if e.steps >= e.checkAt {
			if err := e.stepCheck(c.fn.Name, op.src); err != nil {
				return val{}, err
			}
		}
		if st := e.stats; st != nil {
			st.Ops[op.kind]++
			if prev >= 0 {
				st.Pairs[prev][op.kind]++
			}
			prev = int(op.kind)
		}
		switch op.kind {
		case opBinI:
			x, y := regs[op.a].i, regs[op.b].i
			var r int64
			switch ir.BinOp(op.aux) {
			case ir.IAdd:
				r = x + y
			case ir.ISub:
				r = x - y
			case ir.IMul:
				r = x * y
			case ir.IDiv:
				if y == 0 {
					return val{}, trap(fault.TrapDivByZero, c.fn.Name, op.src, "interp: integer division by zero")
				}
				r = x / y
			case ir.IRem:
				if y == 0 {
					return val{}, trap(fault.TrapDivByZero, c.fn.Name, op.src, "interp: integer remainder by zero")
				}
				r = x % y
			case ir.IAnd:
				r = x & y
			case ir.IOr:
				r = x | y
			case ir.IXor:
				r = x ^ y
			case ir.IShl:
				r = x << uint64(y&63)
			case ir.IShr:
				r = x >> uint64(y&63)
			case ir.IMin:
				r = x
				if y < x {
					r = y
				}
			default: // IMax
				r = x
				if y > x {
					r = y
				}
			}
			regs[op.dst].i = r
			cnt.Int++

		case opBinF:
			x, y := regs[op.a].f, regs[op.b].f
			var r float64
			switch ir.BinOp(op.aux) {
			case ir.FAdd:
				r = x + y
			case ir.FSub:
				r = x - y
			case ir.FMul:
				r = x * y
			default: // FDiv
				r = x / y
				cnt.FloatDiv++
				regs[op.dst].f = r
				pc++
				continue
			}
			regs[op.dst].f = r
			cnt.Float++

		case opCmpI:
			x, y := regs[op.a].i, regs[op.b].i
			regs[op.dst].i = b2i(cmpI(ir.CmpPred(op.aux), x, y))
			cnt.Int++

		case opCmpF:
			x, y := regs[op.a].f, regs[op.b].f
			regs[op.dst].i = b2i(cmpF(ir.CmpPred(op.aux), x, y))
			cnt.Int++

		case opCastIF:
			regs[op.dst].f = float64(regs[op.a].i)
			cnt.Int++

		case opCastFI:
			regs[op.dst].i = int64(regs[op.a].f)
			cnt.Int++

		case opMath:
			x := regs[op.a].f
			var r float64
			switch ir.MathOp(op.aux) {
			case ir.Sqrt:
				r = math.Sqrt(x)
			case ir.Sin:
				r = math.Sin(x)
			case ir.Cos:
				r = math.Cos(x)
			case ir.Fabs:
				r = math.Abs(x)
			case ir.Exp:
				r = math.Exp(x)
			case ir.Log:
				r = math.Log(x)
			default: // Floor
				r = math.Floor(x)
			}
			regs[op.dst].f = r
			cnt.MathOps++

		case opSelect:
			if regs[op.a].i != 0 {
				regs[op.dst] = regs[op.b]
			} else {
				regs[op.dst] = regs[op.c]
			}
			cnt.Int++

		case opLoadF:
			p := regs[op.a].p
			if !p.inBounds() {
				return val{}, memTrap(c.fn.Name, op.src, "load", p)
			}
			regs[op.dst].f = p.seg.F[p.off]
			cnt.Loads++
			if e.tracer != nil && !p.seg.Stack {
				e.tracer.Load(p.addr())
			}

		case opLoadI:
			p := regs[op.a].p
			if !p.inBounds() {
				return val{}, memTrap(c.fn.Name, op.src, "load", p)
			}
			regs[op.dst].i = p.seg.I[p.off]
			cnt.Loads++
			if e.tracer != nil && !p.seg.Stack {
				e.tracer.Load(p.addr())
			}

		case opStoreF:
			p := regs[op.b].p
			if !p.inBounds() {
				return val{}, memTrap(c.fn.Name, op.src, "store", p)
			}
			p.seg.F[p.off] = regs[op.a].f
			cnt.Stores++
			if e.tracer != nil && !p.seg.Stack {
				e.tracer.Store(p.addr())
			}

		case opStoreI:
			p := regs[op.b].p
			if !p.inBounds() {
				return val{}, memTrap(c.fn.Name, op.src, "store", p)
			}
			p.seg.I[p.off] = regs[op.a].i
			cnt.Stores++
			if e.tracer != nil && !p.seg.Stack {
				e.tracer.Store(p.addr())
			}

		case opPrefetch:
			// Prefetches never fault: out-of-bounds prefetches are dropped,
			// matching the non-binding semantics of builtin_prefetch.
			p := regs[op.a].p
			cnt.Prefetches++
			if p.inBounds() && !p.seg.Stack {
				if e.prefHook != nil {
					e.prefHook(op.src, p.addr())
				} else if e.tracer != nil {
					e.tracer.Prefetch(p.addr())
				}
			}

		case opGEP:
			base := regs[op.a].p
			off := regs[op.idx[0]].i
			for k := 1; k < len(op.idx); k++ {
				off = off*regs[op.dims[k]].i + regs[op.idx[k]].i
			}
			regs[op.dst].p = ptr{seg: base.seg, off: base.off + off}
			cnt.GEPs++

		case opCall:
			// The callee copies args into its own registers at frame entry,
			// so the caller's frame-local buffer can be reused across calls.
			if cap(fr.args) < len(op.args) {
				fr.args = make([]val, len(op.args))
			}
			sub := fr.args[:len(op.args)]
			for i, r := range op.args {
				sub[i] = regs[r]
			}
			out, err := e.run(op.callee, sub)
			if err != nil {
				return val{}, err
			}
			if op.dst >= 0 {
				regs[op.dst] = out
			}
			cnt.Calls++

		case opBr:
			for i, m := range op.moves0 {
				tmp[i] = regs[m.src]
			}
			for i, m := range op.moves0 {
				regs[m.dst] = tmp[i]
			}
			cnt.Branches++
			pc = op.t0
			continue

		case opCondBr:
			var moves []move
			var target int
			if regs[op.a].i != 0 {
				moves, target = op.moves0, op.t0
			} else {
				moves, target = op.moves1, op.t1
			}
			for i, m := range moves {
				tmp[i] = regs[m.src]
			}
			for i, m := range moves {
				regs[m.dst] = tmp[i]
			}
			cnt.Branches++
			pc = target
			continue

		case opRet:
			if op.a >= 0 {
				return regs[op.a], nil
			}
			return val{}, nil

		case opNop:
		}
		pc++
	}
	return val{}, fault.New(fault.KindVerify, "interp: fell off end of @%s", c.fn.Name)
}

func segName(s *Seg) string {
	if s == nil {
		return "<nil>"
	}
	if s.Stack {
		return "<stack>"
	}
	return s.name
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpI(p ir.CmpPred, x, y int64) bool {
	switch p {
	case ir.EQ:
		return x == y
	case ir.NE:
		return x != y
	case ir.LT:
		return x < y
	case ir.LE:
		return x <= y
	case ir.GT:
		return x > y
	default:
		return x >= y
	}
}

func cmpF(p ir.CmpPred, x, y float64) bool {
	switch p {
	case ir.EQ:
		return x == y
	case ir.NE:
		return x != y
	case ir.LT:
		return x < y
	case ir.LE:
		return x <= y
	case ir.GT:
		return x > y
	default:
		return x >= y
	}
}
