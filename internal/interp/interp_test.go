package interp

import (
	"math"
	"strings"
	"testing"

	"dae/internal/ir"
	"dae/internal/lower"
)

// compileSrc lowers TaskC source and returns the module.
func compileSrc(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lower.Compile(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func run(t *testing.T, m *ir.Module, fn string, args ...Value) Value {
	t.Helper()
	env := NewEnv(NewProgram(m), nil)
	out, err := env.Call(m.Func(fn), args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return out
}

func TestArithmetic(t *testing.T) {
	m := compileSrc(t, `
int f(int a, int b) {
	int s = a + b * 2;
	s = s - a / 2;
	s = s % 100;
	return s;
}`)
	got := run(t, m, "f", Int(10), Int(7)).Int64()
	want := int64((10 + 7*2 - 10/2) % 100)
	if got != want {
		t.Errorf("f(10,7) = %d, want %d", got, want)
	}
}

func TestFloatArithmeticAndConversion(t *testing.T) {
	m := compileSrc(t, `
float f(float x, int n) {
	float y = x * n + 0.5;
	y /= 2;
	return y - 1;
}`)
	got := run(t, m, "f", Float(2.0), Int(3)).Float64()
	want := (2.0*3+0.5)/2 - 1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("f = %g, want %g", got, want)
	}
}

func TestBitOps(t *testing.T) {
	m := compileSrc(t, `
int f(int a, int b) {
	return ((a << 3) | (b & 5)) ^ (a >> 1);
}`)
	got := run(t, m, "f", Int(6), Int(7)).Int64()
	want := ((6 << 3) | (7 & 5)) ^ (6 >> 1)
	if got != int64(want) {
		t.Errorf("got %d, want %d", got, want)
	}
}

func TestLoopSum(t *testing.T) {
	m := compileSrc(t, `
int sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += i;
	}
	return s;
}`)
	got := run(t, m, "sum", Int(100)).Int64()
	if got != 4950 {
		t.Errorf("sum(100) = %d, want 4950", got)
	}
}

func TestWhileLoop(t *testing.T) {
	m := compileSrc(t, `
int collatz(int n0) {
	int n = n0;
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		steps++;
	}
	return steps;
}
`)
	got := run(t, m, "collatz", Int(6)).Int64()
	if got != 8 { // 6→3→10→5→16→8→4→2→1
		t.Errorf("collatz(6) = %d, want 8", got)
	}
}

func TestArrayReadWrite(t *testing.T) {
	m := compileSrc(t, `
task scale(float A[n], int n, float k) {
	for (int i = 0; i < n; i++) {
		A[i] = A[i] * k;
	}
}`)
	h := NewHeap()
	a := h.AllocFloat("A", 8)
	for i := range a.F {
		a.F[i] = float64(i)
	}
	run(t, m, "scale", Ptr(a), Int(8), Float(2.0))
	for i, v := range a.F {
		if v != float64(2*i) {
			t.Errorf("A[%d] = %g, want %g", i, v, float64(2*i))
		}
	}
}

func TestMatrix2D(t *testing.T) {
	m := compileSrc(t, `
task transposeAdd(float A[N][N], float B[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = 0; j < N; j++) {
			B[i][j] = B[i][j] + A[j][i];
		}
	}
}`)
	const n = 4
	h := NewHeap()
	a := h.AllocFloat("A", n*n)
	b := h.AllocFloat("B", n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.F[i*n+j] = float64(10*i + j)
		}
	}
	run(t, m, "transposeAdd", Ptr(a), Ptr(b), Int(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := float64(10*j + i)
			if b.F[i*n+j] != want {
				t.Errorf("B[%d][%d] = %g, want %g", i, j, b.F[i*n+j], want)
			}
		}
	}
}

func TestIndirection(t *testing.T) {
	m := compileSrc(t, `
task gather(float Dst[n], float Src[m], int Ind[n], int n, int m) {
	for (int i = 0; i < n; i++) {
		Dst[i] = Src[Ind[i]];
	}
}`)
	h := NewHeap()
	dst := h.AllocFloat("Dst", 4)
	src := h.AllocFloat("Src", 8)
	ind := h.AllocInt("Ind", 4)
	for i := range src.F {
		src.F[i] = float64(i * i)
	}
	copy(ind.I, []int64{7, 0, 3, 5})
	run(t, m, "gather", Ptr(dst), Ptr(src), Ptr(ind), Int(4), Int(8))
	want := []float64{49, 0, 9, 25}
	for i, v := range dst.F {
		if v != want[i] {
			t.Errorf("Dst[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// A[i] must not be read when i >= n (out of bounds otherwise).
	m := compileSrc(t, `
int find(int A[n], int n, int key) {
	int i = 0;
	while (i < n && A[i] != key) {
		i++;
	}
	return i;
}`)
	h := NewHeap()
	a := h.AllocInt("A", 4)
	copy(a.I, []int64{5, 6, 7, 8})
	if got := run(t, m, "find", Ptr(a), Int(4), Int(7)).Int64(); got != 2 {
		t.Errorf("find key=7 → %d, want 2", got)
	}
	// Missing key: loop must terminate at i==n without reading A[n].
	if got := run(t, m, "find", Ptr(a), Int(4), Int(99)).Int64(); got != 4 {
		t.Errorf("find key=99 → %d, want 4", got)
	}
}

func TestLogicalOrAndNot(t *testing.T) {
	m := compileSrc(t, `
int f(int a, int b) {
	int r = 0;
	if (a == 0 || b == 0) { r = r + 1; }
	if (a != 0 && b != 0) { r = r + 10; }
	if (!(a < b)) { r = r + 100; }
	return r;
}`)
	if got := run(t, m, "f", Int(0), Int(5)).Int64(); got != 1 {
		t.Errorf("f(0,5) = %d, want 1", got)
	}
	if got := run(t, m, "f", Int(3), Int(2)).Int64(); got != 110 {
		t.Errorf("f(3,2) = %d, want 110", got)
	}
}

func TestMathBuiltins(t *testing.T) {
	m := compileSrc(t, `
float f(float x) {
	return sqrt(x) + fabs(0.0 - x) + floor(x) + exp(0.0) + log(1.0) + sin(0.0) + cos(0.0);
}`)
	got := run(t, m, "f", Float(4.0)).Float64()
	want := 2.0 + 4.0 + 4.0 + 1.0 + 0.0 + 0.0 + 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("f(4) = %g, want %g", got, want)
	}
}

func TestFunctionCalls(t *testing.T) {
	m := compileSrc(t, `
float dot(float X[n], float Y[n], int n) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		s += X[i] * Y[i];
	}
	return s;
}
task norm(float X[n], int n, float Out[one], int one) {
	Out[0] = sqrt(dot(X, X, n));
}`)
	h := NewHeap()
	x := h.AllocFloat("X", 3)
	out := h.AllocFloat("Out", 1)
	copy(x.F, []float64{3, 4, 12})
	run(t, m, "norm", Ptr(x), Int(3), Ptr(out), Int(1))
	if out.F[0] != 13 {
		t.Errorf("norm = %g, want 13", out.F[0])
	}
}

func TestRecursionRejected(t *testing.T) {
	m := compileSrc(t, `
int f(int n) {
	if (n <= 1) { return 1; }
	return n * f(n - 1);
}`)
	env := NewEnv(NewProgram(m), nil)
	_, err := env.Call(m.Func("f"), Int(5))
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("expected recursion error, got %v", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	m := compileSrc(t, `int f(int a) { return 10 / a; }`)
	env := NewEnv(NewProgram(m), nil)
	if _, err := env.Call(m.Func("f"), Int(0)); err == nil {
		t.Fatal("expected division-by-zero error")
	}
	m2 := compileSrc(t, `int f(int a) { return 10 % a; }`)
	env2 := NewEnv(NewProgram(m2), nil)
	if _, err := env2.Call(m2.Func("f"), Int(0)); err == nil {
		t.Fatal("expected remainder-by-zero error")
	}
}

func TestOutOfBoundsLoad(t *testing.T) {
	m := compileSrc(t, `float f(float A[n], int n) { return A[n]; }`)
	h := NewHeap()
	a := h.AllocFloat("A", 4)
	env := NewEnv(NewProgram(m), nil)
	_, err := env.Call(m.Func("f"), Ptr(a), Int(4))
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("expected out-of-bounds error, got %v", err)
	}
}

func TestPrefetchNeverFaults(t *testing.T) {
	m := compileSrc(t, `
task acc(float A[n], int n) {
	for (int i = 0; i < n + 100; i++) {
		prefetch A[i];
	}
}`)
	h := NewHeap()
	a := h.AllocFloat("A", 4)
	env := NewEnv(NewProgram(m), nil)
	if _, err := env.Call(m.Func("acc"), Ptr(a), Int(4)); err != nil {
		t.Fatalf("prefetch should not fault: %v", err)
	}
	if env.Counts().Prefetches != 104 {
		t.Errorf("prefetches = %d, want 104", env.Counts().Prefetches)
	}
}

// recordingTracer records event addresses by kind.
type recordingTracer struct {
	loads, stores, prefetches []int64
}

func (r *recordingTracer) Load(a int64)     { r.loads = append(r.loads, a) }
func (r *recordingTracer) Store(a int64)    { r.stores = append(r.stores, a) }
func (r *recordingTracer) Prefetch(a int64) { r.prefetches = append(r.prefetches, a) }

func TestTracerSeesAccesses(t *testing.T) {
	m := compileSrc(t, `
task copy(float D[n], float S[n], int n) {
	for (int i = 0; i < n; i++) {
		prefetch S[i];
		D[i] = S[i];
	}
}`)
	h := NewHeap()
	d := h.AllocFloat("D", 3)
	s := h.AllocFloat("S", 3)
	tr := &recordingTracer{}
	env := NewEnv(NewProgram(m), tr)
	if _, err := env.Call(m.Func("copy"), Ptr(d), Ptr(s), Int(3)); err != nil {
		t.Fatal(err)
	}
	if len(tr.loads) != 3 || len(tr.stores) != 3 || len(tr.prefetches) != 3 {
		t.Fatalf("events: %d loads, %d stores, %d prefetches; want 3 each",
			len(tr.loads), len(tr.stores), len(tr.prefetches))
	}
	for i := 0; i < 3; i++ {
		if tr.loads[i] != s.Addr(int64(i)) {
			t.Errorf("load %d addr = %d, want %d", i, tr.loads[i], s.Addr(int64(i)))
		}
		if tr.stores[i] != d.Addr(int64(i)) {
			t.Errorf("store %d addr = %d, want %d", i, tr.stores[i], d.Addr(int64(i)))
		}
		if tr.prefetches[i] != tr.loads[i] {
			t.Errorf("prefetch %d addr should match load addr", i)
		}
	}
	// Local variable i must not generate memory traffic.
	c := env.Counts()
	if c.Loads <= 3 {
		// i is an alloca pre-mem2reg: loads of i are counted but not traced.
		t.Logf("loads counted: %d (includes alloca traffic)", c.Loads)
	}
}

func TestCountsClasses(t *testing.T) {
	m := compileSrc(t, `
task k(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = A[i] * 2.0 + 1.0;
	}
}`)
	h := NewHeap()
	a := h.AllocFloat("A", 10)
	env := NewEnv(NewProgram(m), nil)
	if _, err := env.Call(m.Func("k"), Ptr(a), Int(10)); err != nil {
		t.Fatal(err)
	}
	c := env.Counts()
	if c.Float != 20 { // fmul + fadd per element
		t.Errorf("float ops = %d, want 20", c.Float)
	}
	if c.Total() == 0 || c.Branches == 0 || c.GEPs == 0 {
		t.Errorf("expected nonzero totals: %+v", c)
	}
	env.ResetCounts()
	if env.Counts().Total() != 0 {
		t.Error("ResetCounts should zero counters")
	}
}

func TestHeapLayout(t *testing.T) {
	h := NewHeap()
	a := h.AllocFloat("A", 100)
	b := h.AllocInt("B", 50)
	if a.Base%64 != 0 || b.Base%64 != 0 {
		t.Error("allocations should be cache-line aligned")
	}
	if b.Base < a.Base+100*WordSize+segGap {
		t.Error("allocations should be separated by the guard gap")
	}
	if h.Footprint() != 150*WordSize {
		t.Errorf("footprint = %d, want %d", h.Footprint(), 150*WordSize)
	}
	if len(h.Segs()) != 2 {
		t.Error("Segs should list both allocations")
	}
	if a.Name() != "A" || a.Len() != 100 || b.Len() != 50 {
		t.Error("segment metadata wrong")
	}
}

func TestNestedLoopsDeep(t *testing.T) {
	m := compileSrc(t, `
int count(int n) {
	int c = 0;
	for (int i = 0; i < n; i++) {
		for (int j = i; j < n; j++) {
			for (int k = j; k < n; k++) {
				c++;
			}
		}
	}
	return c;
}`)
	// Number of triples i<=j<=k < n = C(n+2,3)
	got := run(t, m, "count", Int(10)).Int64()
	if got != 220 {
		t.Errorf("count(10) = %d, want 220", got)
	}
}

func TestEarlyReturn(t *testing.T) {
	m := compileSrc(t, `
int f(int n) {
	for (int i = 0; i < n; i++) {
		if (i * i > n) {
			return i;
		}
	}
	return 0 - 1;
}`)
	if got := run(t, m, "f", Int(20)).Int64(); got != 5 {
		t.Errorf("f(20) = %d, want 5", got)
	}
	if got := run(t, m, "f", Int(1)).Int64(); got != -1 {
		t.Errorf("f(1) = %d, want -1", got)
	}
}

func TestFloatComparisonsAndCounts(t *testing.T) {
	m := compileSrc(t, `
int f(float a, float b) {
	int r = 0;
	if (a < b) { r = r + 1; }
	if (a <= b) { r = r + 10; }
	if (a > b) { r = r + 100; }
	if (a >= b) { r = r + 1000; }
	if (a == b) { r = r + 10000; }
	if (a != b) { r = r + 100000; }
	return r;
}`)
	env := NewEnv(NewProgram(m), nil)
	cases := []struct {
		a, b float64
		want int64
	}{
		{1, 2, 1 + 10 + 100000},
		{2, 1, 100 + 1000 + 100000},
		{3, 3, 10 + 1000 + 10000},
	}
	for _, c := range cases {
		out, err := env.Call(m.Func("f"), Float(c.a), Float(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if out.Int64() != c.want {
			t.Errorf("f(%g,%g) = %d, want %d", c.a, c.b, out.Int64(), c.want)
		}
	}
}

func TestCloneArgs(t *testing.T) {
	h := NewHeap()
	a := h.AllocFloat("A", 4)
	b := h.AllocInt("B", 4)
	for i := range a.F {
		a.F[i] = float64(i)
		b.I[i] = int64(i * 10)
	}
	args := []Value{Ptr(a), Ptr(b), Ptr(a), Int(7), Float(2.5)}
	scratch := NewHeap()
	cloned := CloneArgs(scratch, args)
	if len(cloned) != len(args) {
		t.Fatal("length changed")
	}
	// Scalars pass through unchanged.
	if cloned[3].Int64() != 7 || cloned[4].Float64() != 2.5 {
		t.Error("scalars should pass through")
	}
	// Repeated segment maps to one clone; mutation through the clone must
	// not touch the original.
	segs := scratch.Segs()
	if len(segs) != 2 {
		t.Fatalf("clones = %d, want 2 (A once, B once)", len(segs))
	}
	for _, s := range segs {
		if s.Elem == FloatElem {
			if s.F[2] != 2 {
				t.Error("clone should copy contents")
			}
			s.F[2] = 99
		}
	}
	if a.F[2] != 2 {
		t.Error("mutating the clone must not touch the original")
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Int: 1, Float: 2, FloatDiv: 3, MathOps: 4, Loads: 5,
		Stores: 6, Prefetches: 7, Branches: 8, GEPs: 9, Calls: 10}
	b := a
	b.Add(a)
	if b.Total() != 2*a.Total() {
		t.Errorf("Add then Total = %d, want %d", b.Total(), 2*a.Total())
	}
}
