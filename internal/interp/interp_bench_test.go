package interp

import (
	"testing"

	"dae/internal/lower"
	"dae/internal/passes"
)

// benchmark kernels measuring the interpreter's throughput, with and without
// cache tracing — the figure that bounds how large the evaluation inputs can
// be.

const benchKernel = `
task daxpy(float Y[n], float X[n], int n, float a, int reps) {
	for (int r = 0; r < reps; r++) {
		for (int i = 0; i < n; i++) {
			Y[i] = Y[i] + a * X[i];
		}
	}
}
`

func setupBench(b *testing.B, optimize bool) (*Env, func()) {
	b.Helper()
	m, err := lower.Compile(benchKernel, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if optimize {
		if _, err := passes.OptimizeModule(m); err != nil {
			b.Fatal(err)
		}
	}
	h := NewHeap()
	y := h.AllocFloat("Y", 4096)
	x := h.AllocFloat("X", 4096)
	env := NewEnv(NewProgram(m), nil)
	f := m.Func("daxpy")
	call := func() {
		if _, err := env.Call(f, Ptr(y), Ptr(x), Int(4096), Float(1.5), Int(4)); err != nil {
			b.Fatal(err)
		}
	}
	return env, call
}

// BenchmarkInterpDaxpy measures raw interpreter speed (no tracer) on
// optimized SSA code; ops/sec = instructions retired per wall second.
func BenchmarkInterpDaxpy(b *testing.B) {
	env, call := setupBench(b, true)
	call() // warm the compilation cache
	env.ResetCounts()
	call()
	perCall := env.Counts().Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
	b.StopTimer()
	b.ReportMetric(float64(perCall)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkInterpDaxpyUnoptimized shows the cost of interpreting
// alloca-based (pre-mem2reg) code.
func BenchmarkInterpDaxpyUnoptimized(b *testing.B) {
	_, call := setupBench(b, false)
	call()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
}

// countingTracer is the cheapest possible tracer, to isolate dispatch cost.
type countingTracer struct{ n int64 }

func (t *countingTracer) Load(int64)     { t.n++ }
func (t *countingTracer) Store(int64)    { t.n++ }
func (t *countingTracer) Prefetch(int64) { t.n++ }

// BenchmarkInterpDaxpyTraced measures the overhead of the memory-event
// tracer interface.
func BenchmarkInterpDaxpyTraced(b *testing.B) {
	env, call := setupBench(b, true)
	tr := &countingTracer{}
	env.SetTracer(tr)
	call()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
}
