package interp

import (
	"testing"

	"dae/internal/lower"
	"dae/internal/mem"
	"dae/internal/passes"
)

// benchmark kernels measuring the interpreter's throughput, with and without
// cache tracing — the figure that bounds how large the evaluation inputs can
// be.

const benchKernel = `
task daxpy(float Y[n], float X[n], int n, float a, int reps) {
	for (int r = 0; r < reps; r++) {
		for (int i = 0; i < n; i++) {
			Y[i] = Y[i] + a * X[i];
		}
	}
}
`

func setupBench(b *testing.B, optimize bool) (*Env, func()) {
	b.Helper()
	m, err := lower.Compile(benchKernel, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if optimize {
		if _, err := passes.OptimizeModule(m); err != nil {
			b.Fatal(err)
		}
	}
	h := NewHeap()
	y := h.AllocFloat("Y", 4096)
	x := h.AllocFloat("X", 4096)
	env := NewEnv(NewProgram(m), nil)
	f := m.Func("daxpy")
	call := func() {
		if _, err := env.Call(f, Ptr(y), Ptr(x), Int(4096), Float(1.5), Int(4)); err != nil {
			b.Fatal(err)
		}
	}
	return env, call
}

// BenchmarkInterpDaxpy measures raw interpreter speed (no tracer) on
// optimized SSA code; ops/sec = instructions retired per wall second.
func BenchmarkInterpDaxpy(b *testing.B) {
	env, call := setupBench(b, true)
	call() // warm the compilation cache
	env.ResetCounts()
	call()
	perCall := env.Counts().Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
	b.StopTimer()
	b.ReportMetric(float64(perCall)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkInterpDaxpyUnoptimized shows the cost of interpreting
// alloca-based (pre-mem2reg) code.
func BenchmarkInterpDaxpyUnoptimized(b *testing.B) {
	_, call := setupBench(b, false)
	call()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
}

// countingTracer is the cheapest possible tracer, to isolate dispatch cost.
type countingTracer struct{ n int64 }

func (t *countingTracer) Load(int64)     { t.n++ }
func (t *countingTracer) Store(int64)    { t.n++ }
func (t *countingTracer) Prefetch(int64) { t.n++ }

// BenchmarkInterpDaxpyTraced measures the overhead of the memory-event
// tracer interface.
func BenchmarkInterpDaxpyTraced(b *testing.B) {
	env, call := setupBench(b, true)
	tr := &countingTracer{}
	env.SetTracer(tr)
	call()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
}

// benchEngines runs the same daxpy body once per execution engine, so a
// single `-bench Dispatch` invocation compares the register-bytecode VM
// against the compiled-op tree oracle under identical conditions. Both
// engines retire the same component-op stream (that is the parity
// contract), so Minstr/s differences are pure dispatch cost.
func benchEngines(b *testing.B, setup func(env *Env)) {
	for _, eng := range []Engine{EngineBytecode, EngineTree} {
		b.Run(eng.String(), func(b *testing.B) {
			env, call := setupBench(b, true)
			env.SetEngine(eng)
			if setup != nil {
				setup(env)
			}
			call() // warm the compilation cache and frame pool
			env.ResetCounts()
			call()
			perCall := env.Counts().Total()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				call()
			}
			b.StopTimer()
			b.ReportMetric(float64(perCall)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkDispatch measures raw per-op dispatch speed of both engines with
// no memory-event consumer installed.
func BenchmarkDispatch(b *testing.B) { benchEngines(b, nil) }

// BenchmarkDispatchTraced routes memory events through the Tracer interface,
// the configuration the rt collection pipeline used before fused probes.
func BenchmarkDispatchTraced(b *testing.B) {
	benchEngines(b, func(env *Env) { env.SetTracer(&countingTracer{}) })
}

// hierTracer adapts the Tracer interface onto a hierarchy, mirroring the rt
// pipeline's per-core adapter. The tree engine consumes events through it;
// the bytecode engine bypasses it via the fused probes when a hierarchy is
// installed.
type hierTracer struct{ h *mem.Hierarchy }

func (t *hierTracer) Load(a int64)     { t.h.Access(a, mem.Load) }
func (t *hierTracer) Store(a int64)    { t.h.Access(a, mem.Store) }
func (t *hierTracer) Prefetch(a int64) { t.h.Access(a, mem.Prefetch) }

// BenchmarkDispatchHierarchy installs a real cache hierarchy the way the
// collection pipeline does — hierarchy plus tracer adapter — so both engines
// simulate the same event stream: the bytecode engine through its fused
// cache probes, the tree engine through the Tracer interface.
func BenchmarkDispatchHierarchy(b *testing.B) {
	benchEngines(b, func(env *Env) {
		cfg := mem.EvalHierarchy()
		h := mem.NewHierarchy(cfg, mem.NewCache(cfg.L3))
		env.SetTracer(&hierTracer{h: h})
		env.SetHierarchy(h)
	})
}

// BenchmarkEnvCallAllocs measures steady-state allocations of Env.Call with
// frame reuse: after warmup, repeated calls must not grow the heap (the
// register file, phi scratch and argument buffers all come from the Env's
// frame pool). Run with -benchmem; allocs/op is the regression signal.
func BenchmarkEnvCallAllocs(b *testing.B) {
	_, call := setupBench(b, true)
	call() // warm the compilation cache and the frame pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
}

// BenchmarkEnvCallAllocsAlloca covers the unoptimized (pre-mem2reg) path
// whose frames carry alloca stack segments, exercising their reuse.
func BenchmarkEnvCallAllocsAlloca(b *testing.B) {
	_, call := setupBench(b, false)
	call()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
}

// callKernel keeps a function call inside the inner loop; compiled without
// the optimizer (no inlining), every iteration takes the opCall path, so the
// benchmark isolates per-call frame acquisition.
const callKernel = `
float fma1(float a, float x, float y) {
	return y + a * x;
}
task daxpy_call(float Y[n], float X[n], int n, float a, int reps) {
	for (int r = 0; r < reps; r++) {
		for (int i = 0; i < n; i++) {
			Y[i] = fma1(a, X[i], Y[i]);
		}
	}
}
`

// BenchmarkEnvCallAllocsNestedCalls measures allocations when the hot loop
// performs an IR-level call per iteration (4096*4 opCall frames per Env.Call).
func BenchmarkEnvCallAllocsNestedCalls(b *testing.B) {
	m, err := lower.Compile(callKernel, "bench")
	if err != nil {
		b.Fatal(err)
	}
	h := NewHeap()
	y := h.AllocFloat("Y", 4096)
	x := h.AllocFloat("X", 4096)
	env := NewEnv(NewProgram(m), nil)
	f := m.Func("daxpy_call")
	call := func() {
		if _, err := env.Call(f, Ptr(y), Ptr(x), Int(4096), Float(1.5), Int(4)); err != nil {
			b.Fatal(err)
		}
	}
	call()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call()
	}
}
