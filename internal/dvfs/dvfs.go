// Package dvfs models the voltage-frequency levels and transition cost of
// the evaluation machine. The paper sweeps 1.6–3.4 GHz in 400 MHz steps on a
// Sandybridge and assumes the 500 ns transition latency of state-of-the-art
// on-chip regulators (Haswell); the ideal-future case uses zero latency.
package dvfs

import "fmt"

// Level is one operating point.
type Level struct {
	// Freq is the core frequency in GHz.
	Freq float64
	// Volt is the supply voltage in volts at this frequency.
	Volt float64
}

// Table is the machine's DVFS capability.
type Table struct {
	// Levels is ordered by ascending frequency.
	Levels []Level
	// TransitionLatency is the time one frequency switch takes, in seconds.
	// During a transition no instructions execute and only static power is
	// consumed (§6.1).
	TransitionLatency float64
}

// Default returns the evaluation configuration: fmin = 1.6 GHz to
// fmax = 3.4 GHz in 400 MHz steps with a linear V(f), and the 500 ns
// transition latency.
func Default() Table {
	return Table{
		Levels: []Level{
			{Freq: 1.6, Volt: 0.85},
			{Freq: 2.0, Volt: 0.95},
			{Freq: 2.4, Volt: 1.05},
			{Freq: 2.8, Volt: 1.15},
			{Freq: 3.2, Volt: 1.25},
			{Freq: 3.4, Volt: 1.30},
		},
		TransitionLatency: 500e-9,
	}
}

// Ideal returns the same levels with instantaneous transitions (the
// zero-latency future-hardware case of §6.1).
func Ideal() Table {
	t := Default()
	t.TransitionLatency = 0
	return t
}

// Fmin returns the lowest operating point.
func (t Table) Fmin() Level { return t.Levels[0] }

// Fmax returns the highest operating point.
func (t Table) Fmax() Level { return t.Levels[len(t.Levels)-1] }

// LevelFor returns the slowest level whose frequency meets or exceeds the
// required frequency in GHz — the speed-update rule of RWCEC-driven DVFS:
// given remaining worst-case work and remaining time, run just fast enough.
// Requirements above fmax saturate at fmax (the deadline is then already
// infeasible under the worst case); zero or negative requirements floor at
// fmin.
func (t Table) LevelFor(reqGHz float64) Level {
	for _, l := range t.Levels {
		if l.Freq >= reqGHz {
			return l
		}
	}
	return t.Fmax()
}

// ByFreq returns the level with the given frequency.
func (t Table) ByFreq(f float64) (Level, error) {
	for _, l := range t.Levels {
		if l.Freq == f {
			return l, nil
		}
	}
	return Level{}, fmt.Errorf("dvfs: no %g GHz level", f)
}
