package dvfs

import "testing"

func TestDefaultTable(t *testing.T) {
	tab := Default()
	if len(tab.Levels) != 6 {
		t.Fatalf("levels = %d, want 6 (1.6–3.4 GHz in 400 MHz steps)", len(tab.Levels))
	}
	if tab.Fmin().Freq != 1.6 || tab.Fmax().Freq != 3.4 {
		t.Errorf("range [%g, %g], want [1.6, 3.4]", tab.Fmin().Freq, tab.Fmax().Freq)
	}
	if tab.TransitionLatency != 500e-9 {
		t.Errorf("transition latency = %g, want 500 ns", tab.TransitionLatency)
	}
	for i := 1; i < len(tab.Levels); i++ {
		prev, cur := tab.Levels[i-1], tab.Levels[i]
		if cur.Freq <= prev.Freq {
			t.Errorf("frequency not ascending at level %d", i)
		}
		if cur.Volt <= prev.Volt {
			t.Errorf("voltage not ascending at level %d (V must rise with f)", i)
		}
	}
}

func TestIdealTable(t *testing.T) {
	tab := Ideal()
	if tab.TransitionLatency != 0 {
		t.Error("ideal transitions must be instantaneous")
	}
	if len(tab.Levels) != len(Default().Levels) {
		t.Error("ideal table must keep the same operating points")
	}
}

func TestByFreq(t *testing.T) {
	tab := Default()
	for _, l := range tab.Levels {
		got, err := tab.ByFreq(l.Freq)
		if err != nil || got != l {
			t.Errorf("ByFreq(%g) = %+v, %v", l.Freq, got, err)
		}
	}
	if _, err := tab.ByFreq(1.7); err == nil {
		t.Error("ByFreq of a missing level must error")
	}
}
