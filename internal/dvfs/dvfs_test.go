package dvfs

import "testing"

func TestDefaultTable(t *testing.T) {
	tab := Default()
	if len(tab.Levels) != 6 {
		t.Fatalf("levels = %d, want 6 (1.6–3.4 GHz in 400 MHz steps)", len(tab.Levels))
	}
	if tab.Fmin().Freq != 1.6 || tab.Fmax().Freq != 3.4 {
		t.Errorf("range [%g, %g], want [1.6, 3.4]", tab.Fmin().Freq, tab.Fmax().Freq)
	}
	if tab.TransitionLatency != 500e-9 {
		t.Errorf("transition latency = %g, want 500 ns", tab.TransitionLatency)
	}
	for i := 1; i < len(tab.Levels); i++ {
		prev, cur := tab.Levels[i-1], tab.Levels[i]
		if cur.Freq <= prev.Freq {
			t.Errorf("frequency not ascending at level %d", i)
		}
		if cur.Volt <= prev.Volt {
			t.Errorf("voltage not ascending at level %d (V must rise with f)", i)
		}
	}
}

func TestIdealTable(t *testing.T) {
	tab := Ideal()
	if tab.TransitionLatency != 0 {
		t.Error("ideal transitions must be instantaneous")
	}
	if len(tab.Levels) != len(Default().Levels) {
		t.Error("ideal table must keep the same operating points")
	}
}

func TestByFreq(t *testing.T) {
	tab := Default()
	for _, l := range tab.Levels {
		got, err := tab.ByFreq(l.Freq)
		if err != nil || got != l {
			t.Errorf("ByFreq(%g) = %+v, %v", l.Freq, got, err)
		}
	}
	if _, err := tab.ByFreq(1.7); err == nil {
		t.Error("ByFreq of a missing level must error")
	}
}

func TestLevelFor(t *testing.T) {
	tab := Default()
	cases := []struct {
		req  float64
		want float64
	}{
		{0, 1.6},     // no work remaining: floor at fmin
		{-1, 1.6},    // negative requirement: floor at fmin
		{1.6, 1.6},   // exact level
		{1.7, 2.0},   // between levels: round up, never down
		{2.4, 2.4},
		{3.3, 3.4},
		{3.4, 3.4},
		{9.9, 3.4},   // infeasible deadline: saturate at fmax
	}
	for _, tc := range cases {
		if got := tab.LevelFor(tc.req).Freq; got != tc.want {
			t.Errorf("LevelFor(%g) = %g GHz, want %g", tc.req, got, tc.want)
		}
	}
}
