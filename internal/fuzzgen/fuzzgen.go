// Package fuzzgen generates random well-typed TaskC tasks for differential
// testing: the optimizer must preserve bit-exact semantics, and generated
// access versions must run without faults and without writes on any program
// the generator can produce.
//
// Generated tasks operate on fixed-shape parameters
//
//	task fuzz(float A[n], float B[n], int I[n], int n, int p, int q)
//
// with n always 256 so array indices can be made safe by masking (& 255).
// Loops are bounded by construction, integer denominators are forced odd
// (| 1), and shift amounts are masked, so every generated program
// terminates and never faults — any fault is a compiler bug.
package fuzzgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// N is the fixed array length of generated tasks.
const N = 256

// Gen produces random TaskC sources.
type Gen struct {
	rng     *rand.Rand
	sb      *strings.Builder
	indent  int
	scalars []scalar // in-scope locals
	depth   int      // statement nesting
	loops   int      // enclosing loop count
	budget  int      // remaining statements
	uid     int      // unique name counter
}

type scalar struct {
	name    string
	isFloat bool
	// ro marks loop-control variables: generated code may read them but
	// never assign them (an assignment could make the loop infinite).
	ro bool
}

// New returns a generator seeded deterministically.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Task returns a random task definition named "fuzz".
func (g *Gen) Task() string {
	g.sb = &strings.Builder{}
	g.scalars = []scalar{{name: "p", ro: true}, {name: "q", ro: true}} // params are immutable in TaskC
	g.depth = 0
	g.loops = 0
	g.budget = 24 + g.rng.Intn(24)

	g.line("task fuzz(float A[n], float B[n], int I[n], int n, int p, int q) {")
	g.indent++
	nDecls := 1 + g.rng.Intn(3)
	for i := 0; i < nDecls; i++ {
		g.declStmt()
	}
	for g.budget > 0 {
		g.stmt()
	}
	g.indent--
	g.line("}")
	return g.sb.String()
}

func (g *Gen) line(format string, args ...any) {
	for i := 0; i < g.indent; i++ {
		g.sb.WriteByte('\t')
	}
	fmt.Fprintf(g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *Gen) declStmt() {
	g.uid++
	name := fmt.Sprintf("v%d", g.uid)
	if g.rng.Intn(2) == 0 {
		g.line("int %s = %s;", name, g.intExpr(2))
		g.scalars = append(g.scalars, scalar{name: name})
	} else {
		g.line("float %s = %s;", name, g.floatExpr(2))
		g.scalars = append(g.scalars, scalar{name: name, isFloat: true})
	}
	g.budget--
}

func (g *Gen) stmt() {
	g.budget--
	if g.depth >= 3 {
		g.simpleStmt()
		return
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		g.forStmt()
	case 2:
		g.whileStmt()
	case 3, 4:
		g.ifStmt()
	case 5:
		g.declStmt()
	default:
		g.simpleStmt()
	}
}

func (g *Gen) simpleStmt() {
	switch g.rng.Intn(5) {
	case 0: // array store float
		arr := []string{"A", "B"}[g.rng.Intn(2)]
		g.line("%s[%s] = %s;", arr, g.safeIndex(), g.floatExpr(3))
	case 1: // array store int
		g.line("I[%s] = %s;", g.safeIndex(), g.intExpr(3))
	case 2: // compound float
		arr := []string{"A", "B"}[g.rng.Intn(2)]
		op := []string{"+=", "-=", "*="}[g.rng.Intn(3)]
		g.line("%s[%s] %s %s;", arr, g.safeIndex(), op, g.floatExpr(2))
	case 3: // scalar assign (never to loop-control variables)
		if s, ok := g.pickWritable(); ok {
			if s.isFloat {
				g.line("%s = %s;", s.name, g.floatExpr(3))
			} else {
				g.line("%s = %s;", s.name, g.intExpr(3))
			}
		} else {
			g.line("prefetch A[%s];", g.safeIndex())
		}
	default: // prefetch
		arr := []string{"A", "B", "I"}[g.rng.Intn(3)]
		g.line("prefetch %s[%s];", arr, g.safeIndex())
	}
}

func (g *Gen) forStmt() {
	g.uid++
	iv := fmt.Sprintf("i%d", g.uid)
	bound := 2 + g.rng.Intn(7)
	step := 1 + g.rng.Intn(2)
	if g.loops == 0 && g.rng.Intn(2) == 0 {
		g.line("for (int %s = 0; %s < n; %s += %d) {", iv, iv, iv, step)
	} else {
		g.line("for (int %s = 0; %s < %d; %s += %d) {", iv, iv, bound, iv, step)
	}
	g.enterBlock(scalar{name: iv, ro: true})
	g.exitBlock()
	g.line("}")
}

func (g *Gen) whileStmt() {
	g.uid++
	w := fmt.Sprintf("w%d", g.uid)
	g.line("int %s = %d;", w, 1+g.rng.Intn(8))
	g.line("while (%s > 0) {", w)
	g.indent++
	g.depth++
	g.loops++
	saved := g.snapshot(scalar{name: w, ro: true})
	n := 1 + g.rng.Intn(2)
	for i := 0; i < n && g.budget > 0; i++ {
		g.stmt()
	}
	g.line("%s = %s - 1;", w, w)
	g.restore(saved)
	g.loops--
	g.depth--
	g.indent--
	g.line("}")
}

func (g *Gen) ifStmt() {
	g.line("if (%s) {", g.condExpr())
	g.indent++
	g.depth++
	saved := g.snapshot()
	n := 1 + g.rng.Intn(2)
	for i := 0; i < n && g.budget > 0; i++ {
		g.stmt()
	}
	g.restore(saved)
	if g.rng.Intn(2) == 0 {
		g.indent--
		g.line("} else {")
		g.indent++
		saved := g.snapshot()
		g.stmt()
		g.restore(saved)
	}
	g.depth--
	g.indent--
	g.line("}")
}

// enterBlock/exitBlock wrap loop bodies.
func (g *Gen) enterBlock(extra ...scalar) {
	g.indent++
	g.depth++
	g.loops++
	saved := g.snapshot(extra...)
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n && g.budget > 0; i++ {
		g.stmt()
	}
	g.restore(saved)
	g.loops--
	g.depth--
	g.indent--
}

func (g *Gen) exitBlock() {}

type snap int

func (g *Gen) snapshot(extra ...scalar) snap {
	s := snap(len(g.scalars))
	g.scalars = append(g.scalars, extra...)
	return s
}

func (g *Gen) restore(s snap) { g.scalars = g.scalars[:s] }

func (g *Gen) pickScalar() scalar {
	return g.scalars[g.rng.Intn(len(g.scalars))]
}

// pickWritable returns a non-loop-control scalar, if any is in scope.
func (g *Gen) pickWritable() (scalar, bool) {
	var cands []scalar
	for _, s := range g.scalars {
		if !s.ro {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		return scalar{}, false
	}
	return cands[g.rng.Intn(len(cands))], true
}

func (g *Gen) pickInt() string {
	for tries := 0; tries < 8; tries++ {
		s := g.pickScalar()
		if !s.isFloat {
			return s.name
		}
	}
	return "p"
}

func (g *Gen) pickFloat() (string, bool) {
	for tries := 0; tries < 8; tries++ {
		s := g.pickScalar()
		if s.isFloat {
			return s.name, true
		}
	}
	return "", false
}

// safeIndex yields an in-bounds index expression: (expr & 255).
func (g *Gen) safeIndex() string {
	return fmt.Sprintf("(%s & %d)", g.intExpr(2), N-1)
}

func (g *Gen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(1000)-500)
		case 1:
			return g.pickInt()
		default:
			return fmt.Sprintf("I[%s]", g.safeIndexShallow())
		}
	}
	a := g.intExpr(depth - 1)
	b := g.intExpr(depth - 1)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		// Forced-odd denominator: never zero.
		return fmt.Sprintf("(%s / (%s | 1))", a, b)
	case 4:
		return fmt.Sprintf("(%s %% (%s | 1))", a, b)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	default:
		return fmt.Sprintf("(%s << (%s & 7))", a, b)
	}
}

// safeIndexShallow avoids unbounded recursion inside index expressions.
func (g *Gen) safeIndexShallow() string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(N))
	case 1:
		return fmt.Sprintf("(%s & %d)", g.pickInt(), N-1)
	default:
		return fmt.Sprintf("((%s + %d) & %d)", g.pickInt(), g.rng.Intn(N), N-1)
	}
}

func (g *Gen) floatExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%.3f", g.rng.Float64()*10-5)
		case 1:
			if name, ok := g.pickFloat(); ok {
				return name
			}
			return "0.5"
		case 2:
			return fmt.Sprintf("A[%s]", g.safeIndexShallow())
		default:
			return fmt.Sprintf("B[%s]", g.safeIndexShallow())
		}
	}
	a := g.floatExpr(depth - 1)
	b := g.floatExpr(depth - 1)
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("fabs(%s)", a)
	default:
		// Denominator bounded away from zero.
		return fmt.Sprintf("(%s / (fabs(%s) + 1.0))", a, b)
	}
}

func (g *Gen) condExpr() string {
	if g.rng.Intn(2) == 0 {
		op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
		return fmt.Sprintf("%s %s %s", g.intExpr(1), op, g.intExpr(1))
	}
	op := []string{"<", ">"}[g.rng.Intn(2)]
	return fmt.Sprintf("%s %s %s", g.floatExpr(1), op, g.floatExpr(1))
}
