package fuzzgen

import (
	"math"
	"testing"

	daepass "dae/internal/dae"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/passes"
)

const fuzzTrials = 150

// state captures the memory a fuzz task can touch.
type state struct {
	h *interp.Heap
	a *interp.Seg
	b *interp.Seg
	i *interp.Seg
}

func newState(seed int64) *state {
	s := &state{h: interp.NewHeap()}
	s.a = s.h.AllocFloat("A", N)
	s.b = s.h.AllocFloat("B", N)
	s.i = s.h.AllocInt("I", N)
	x := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x >> 17
	}
	for k := 0; k < N; k++ {
		s.a.F[k] = float64(next()%2000)/100 - 10
		s.b.F[k] = float64(next()%2000)/100 - 10
		s.i.I[k] = int64(next() % 4096)
	}
	return s
}

func (s *state) args() []interp.Value {
	return []interp.Value{
		interp.Ptr(s.a), interp.Ptr(s.b), interp.Ptr(s.i),
		interp.Int(N), interp.Int(13), interp.Int(-7),
	}
}

func (s *state) equal(o *state) (string, bool) {
	for k := 0; k < N; k++ {
		if math.Float64bits(s.a.F[k]) != math.Float64bits(o.a.F[k]) {
			return "A", false
		}
		if math.Float64bits(s.b.F[k]) != math.Float64bits(o.b.F[k]) {
			return "B", false
		}
		if s.i.I[k] != o.i.I[k] {
			return "I", false
		}
	}
	return "", true
}

// TestOptimizerPreservesSemantics compiles each random task twice, optimizes
// one copy, runs both on identical memory, and requires bit-identical final
// state. This is the compiler's strongest correctness net.
func TestOptimizerPreservesSemantics(t *testing.T) {
	for trial := 0; trial < fuzzTrials; trial++ {
		src := New(int64(trial)).Task()

		run := func(optimize bool) (*state, error) {
			m, err := lower.Compile(src, "fuzz")
			if err != nil {
				return nil, err
			}
			f := m.Func("fuzz")
			if optimize {
				if _, err := passes.Optimize(f); err != nil {
					return nil, err
				}
				if err := f.Verify(); err != nil {
					return nil, err
				}
			}
			st := newState(int64(trial))
			env := interp.NewEnv(interp.NewProgram(m), nil)
			if _, err := env.Call(f, st.args()...); err != nil {
				return nil, err
			}
			return st, nil
		}

		ref, err := run(false)
		if err != nil {
			t.Fatalf("trial %d: reference run: %v\nsource:\n%s", trial, err, src)
		}
		opt, err := run(true)
		if err != nil {
			t.Fatalf("trial %d: optimized run: %v\nsource:\n%s", trial, err, src)
		}
		if arr, ok := ref.equal(opt); !ok {
			t.Fatalf("trial %d: optimization changed array %s\nsource:\n%s", trial, arr, src)
		}
	}
}

// TestAccessVersionsAlwaysSafe generates access versions for random tasks
// and checks the §5.2 guarantees: generation never produces invalid IR, and
// a generated access version never faults and never writes memory.
func TestAccessVersionsAlwaysSafe(t *testing.T) {
	generated, none := 0, 0
	for trial := 0; trial < fuzzTrials; trial++ {
		src := New(int64(1000 + trial)).Task()
		m, err := lower.Compile(src, "fuzz")
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nsource:\n%s", trial, err, src)
		}
		opts := daepass.Defaults()
		opts.ParamHints = map[string]int64{"n": N, "p": 13, "q": -7}
		results, err := daepass.GenerateModule(m, opts)
		if err != nil {
			t.Fatalf("trial %d: generate: %v\nsource:\n%s", trial, err, src)
		}
		r := results["fuzz"]
		if r.Access == nil {
			none++
			continue
		}
		generated++
		if err := r.Access.Verify(); err != nil {
			t.Fatalf("trial %d: invalid access IR: %v\nsource:\n%s", trial, err, src)
		}

		st := newState(int64(trial))
		before := newState(int64(trial)) // identical copy
		tr := &storeRecorder{}
		env := interp.NewEnv(interp.NewProgram(m), tr)
		if _, err := env.Call(r.Access, st.args()...); err != nil {
			t.Fatalf("trial %d: access run faulted: %v\nsource:\n%s\naccess:\n%s",
				trial, err, src, r.Access)
		}
		if tr.stores != 0 {
			t.Fatalf("trial %d: access version stored %d times\nsource:\n%s\naccess:\n%s",
				trial, tr.stores, src, r.Access)
		}
		if arr, ok := st.equal(before); !ok {
			t.Fatalf("trial %d: access version mutated array %s\nsource:\n%s", trial, arr, src)
		}
	}
	t.Logf("access versions: %d generated, %d rejected", generated, none)
	if generated == 0 {
		t.Error("fuzzer never produced a task with an access version")
	}
}

type storeRecorder struct{ stores int }

func (s *storeRecorder) Load(int64)     {}
func (s *storeRecorder) Store(int64)    { s.stores++ }
func (s *storeRecorder) Prefetch(int64) {}

// TestTextRoundTripFuzz round-trips random optimized modules through the IR
// printer and parser.
func TestTextRoundTripFuzz(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		src := New(int64(2000 + trial)).Task()
		m, err := lower.Compile(src, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := passes.OptimizeModule(m); err != nil {
			t.Fatal(err)
		}
		s1 := m.String()
		m2, err := ir.ParseModule(s1)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, s1)
		}
		s2 := m2.String()
		m3, err := ir.ParseModule(s2)
		if err != nil {
			t.Fatalf("trial %d: reparse: %v", trial, err)
		}
		if m3.String() != s2 {
			t.Fatalf("trial %d: round trip not idempotent", trial)
		}
	}
}
