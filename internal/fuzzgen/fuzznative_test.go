package fuzzgen

import (
	"testing"

	daepass "dae/internal/dae"
	"dae/internal/fault"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/passes"
)

// FuzzPipeline drives generator-valid TaskC programs through the full
// compile/simulate pipeline — lower, optimize, verify, DAE access
// generation, interpretation under a step budget — with panic recovery at
// the compile boundary. The pipeline must never panic, never hang (the
// budget backstops the generator's termination argument), and the optimizer
// must preserve bit-exact semantics on every seed the fuzzer finds.
func FuzzPipeline(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := New(seed).Task()

		compile := func(optimize bool) (prog *interp.Program, irf *ir.Func, err error) {
			defer fault.Recover(&err, "compile")
			mod, err := lower.Compile(src, "fuzz")
			if err != nil {
				return nil, nil, err
			}
			irf = mod.Func("fuzz")
			if optimize {
				if _, err := passes.Optimize(irf); err != nil {
					return nil, nil, err
				}
				if err := irf.Verify(); err != nil {
					return nil, nil, err
				}
				opts := daepass.Defaults()
				opts.ParamHints = map[string]int64{"n": N, "p": 13, "q": -7}
				if _, err := daepass.GenerateModule(mod, opts); err != nil {
					return nil, nil, err
				}
			}
			return interp.NewProgram(mod), irf, nil
		}

		run := func(optimize bool) (*state, error) {
			prog, irf, err := compile(optimize)
			if err != nil {
				return nil, err
			}
			st := newState(seed)
			env := interp.NewEnv(prog, nil)
			// Generated programs terminate by construction; the budget turns
			// a generator bug into a typed error instead of a fuzzer hang.
			env.SetMaxSteps(4 << 20)
			if _, err := env.Call(irf, st.args()...); err != nil {
				return nil, err
			}
			return st, nil
		}

		ref, err := run(false)
		if err != nil {
			t.Fatalf("reference run: %v\nsource:\n%s", err, src)
		}
		opt, err := run(true)
		if err != nil {
			t.Fatalf("optimized+DAE run: %v\nsource:\n%s", err, src)
		}
		if arr, ok := ref.equal(opt); !ok {
			t.Fatalf("optimization changed array %s\nsource:\n%s", arr, src)
		}
	})
}
