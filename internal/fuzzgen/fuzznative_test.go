package fuzzgen

import (
	"testing"

	"dae/internal/analysis"
	daepass "dae/internal/dae"
	"dae/internal/fault"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/passes"
)

// FuzzPipeline drives generator-valid TaskC programs through the full
// compile/simulate pipeline — lower, optimize, verify, DAE access
// generation, interpretation under a step budget — with panic recovery at
// the compile boundary. The pipeline must never panic, never hang (the
// budget backstops the generator's termination argument), and the optimizer
// must preserve bit-exact semantics on every seed the fuzzer finds.
func FuzzPipeline(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := New(seed).Task()

		compile := func(optimize bool) (prog *interp.Program, irf *ir.Func, accesses []*ir.Func, err error) {
			defer fault.Recover(&err, "compile")
			mod, err := lower.Compile(src, "fuzz")
			if err != nil {
				return nil, nil, nil, err
			}
			irf = mod.Func("fuzz")
			if optimize {
				if _, err := passes.Optimize(irf); err != nil {
					return nil, nil, nil, err
				}
				if err := irf.Verify(); err != nil {
					return nil, nil, nil, err
				}
				opts := daepass.Defaults()
				opts.ParamHints = map[string]int64{"n": N, "p": 13, "q": -7}
				results, err := daepass.GenerateModule(mod, opts)
				if err != nil {
					return nil, nil, nil, err
				}
				for _, res := range results {
					if res.Access != nil {
						accesses = append(accesses, res.Access)
					}
					if res.AccessFull != nil {
						accesses = append(accesses, res.AccessFull)
					}
				}
			}
			return interp.NewProgram(mod), irf, accesses, nil
		}

		run := func(optimize bool) (*state, error) {
			prog, irf, _, err := compile(optimize)
			if err != nil {
				return nil, err
			}
			st := newState(seed)
			env := interp.NewEnv(prog, nil)
			// Generated programs terminate by construction; the budget turns
			// a generator bug into a typed error instead of a fuzzer hang.
			env.SetMaxSteps(4 << 20)
			if _, err := env.Call(irf, st.args()...); err != nil {
				return nil, err
			}
			return st, nil
		}

		ref, err := run(false)
		if err != nil {
			t.Fatalf("reference run: %v\nsource:\n%s", err, src)
		}
		opt, err := run(true)
		if err != nil {
			t.Fatalf("optimized+DAE run: %v\nsource:\n%s", err, src)
		}
		if arr, ok := ref.equal(opt); !ok {
			t.Fatalf("optimization changed array %s\nsource:\n%s", arr, src)
		}

		// Differential purity invariant: the static analyzer certifies every
		// generated access version as store-free to external memory; an
		// interpreter trace of the same version must agree. A disagreement in
		// either direction is a bug — an unsound proof or an impure slice.
		prog, _, accesses, err := compile(true)
		if err != nil {
			t.Fatalf("recompile for purity check: %v\nsource:\n%s", err, src)
		}
		for _, af := range accesses {
			if diags := analysis.VerifyAccessPurity(af); analysis.HasErrors(diags) {
				t.Fatalf("generated access version @%s failed the purity proof:\n%s\nsource:\n%s",
					af.Name, analysis.Format(diags), src)
			}
			rec := &storeRecorder{}
			env := interp.NewEnv(prog, rec)
			env.SetMaxSteps(4 << 20)
			st := newState(seed)
			if _, err := env.Call(af, st.args()...); err != nil {
				t.Fatalf("access version @%s run: %v\nsource:\n%s", af.Name, err, src)
			}
			if rec.stores > 0 {
				t.Fatalf("analyzer-pure access version @%s performed %d external store(s)\nsource:\n%s",
					af.Name, rec.stores, src)
			}
		}

		// Engine differential: the register-bytecode VM and the tree oracle
		// must agree on every observable — ordered trace events, bit-exact
		// outputs, counts, steps, and fault kind — for the task and every
		// generated access version, on every seed the fuzzer finds.
		prog2, fns := compileForEngines(t, seed, src)
		for _, fn := range fns {
			engineDifferential(t, prog2, fn, seed, 4<<20, src)
		}

		// WCEC soundness differential: any finite static bound the cost
		// analysis produces for the task or an access version must dominate
		// the cycles observed on the run, and unbounded verdicts must be
		// diagnosed — on every seed the fuzzer finds.
		wcecSoundnessCheck(t, prog2, fns, seed, src)
	})
}
