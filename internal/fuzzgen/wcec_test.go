package fuzzgen

import (
	"math"
	"testing"

	"dae/internal/analysis/wcec"
	"dae/internal/cpu"
	"dae/internal/interp"
	"dae/internal/ir"
)

// wcecEnv is the integer environment every generated task is bounded at —
// the same values newState seeds the scalar arguments with.
func wcecEnv() map[string]int64 {
	return map[string]int64{"n": N, "p": 13, "q": -7}
}

// wcecSoundnessCheck is the WCEC differential for one compiled seed: every
// function with a finite non-profile static bound must satisfy
// bound >= model.Cycles(observed) on an actual run, and every unbounded
// verdict must carry a diagnostic (never a silent clamp). It returns how
// many functions were asserted.
func wcecSoundnessCheck(t *testing.T, prog *interp.Program, fns []*ir.Func, seed int64, src string) int {
	t.Helper()
	model := wcec.NewCostModel(cpu.DefaultParams())
	an := wcec.New(model)
	asserted := 0
	for _, fn := range fns {
		b := an.BoundFunc(fn, wcecEnv())
		if b.Kind == wcec.BoundUnbounded {
			if !math.IsInf(b.Cycles, 1) {
				t.Errorf("@%s: unbounded verdict with finite cycles %.0f\nsource:\n%s", fn.Name, b.Cycles, src)
			}
			if len(b.Diags) == 0 {
				t.Errorf("@%s: unbounded verdict without a diagnostic\nsource:\n%s", fn.Name, src)
			}
			continue
		}
		_, _, cnt, _, err := engineRun(interp.EngineBytecode, prog, fn, seed, 4<<20)
		if err != nil {
			// A faulted run has no complete observation to certify against.
			continue
		}
		if obs := model.Cycles(cnt); b.Cycles < obs {
			t.Errorf("@%s: static bound %.0f cycles < observed %.0f (kind %s)\nsource:\n%s",
				fn.Name, b.Cycles, obs, b.Kind, src)
		} else {
			asserted++
		}
	}
	return asserted
}

// TestWCECSoundnessSeeded is the deterministic regression net for the static
// cost analysis: a fixed block of generator seeds compiles each task through
// the full optimize+DAE pipeline and asserts the WCEC soundness differential
// on the task and every generated access version.
func TestWCECSoundnessSeeded(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	asserted := 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(5000 + trial)
		src := New(seed).Task()
		prog, fns := compileForEngines(t, seed, src)
		asserted += wcecSoundnessCheck(t, prog, fns, seed, src)
	}
	if asserted == 0 {
		t.Fatal("no seed produced a finite static bound — the differential asserted nothing")
	}
	t.Logf("wcec differential: %d bounds asserted over %d seeds", asserted, trials)
}
