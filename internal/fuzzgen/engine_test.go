package fuzzgen

import (
	"testing"

	"dae/internal/fault"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/passes"

	daepass "dae/internal/dae"
)

// memEvent is one traced memory access: kind (0 load, 1 store, 2 prefetch)
// and byte address.
type memEvent struct {
	kind uint8
	addr int64
}

// eventRecorder captures the full ordered memory-event stream of a run, so
// two engines can be compared event by event rather than by aggregate.
type eventRecorder struct{ events []memEvent }

func (r *eventRecorder) Load(a int64)     { r.events = append(r.events, memEvent{0, a}) }
func (r *eventRecorder) Store(a int64)    { r.events = append(r.events, memEvent{1, a}) }
func (r *eventRecorder) Prefetch(a int64) { r.events = append(r.events, memEvent{2, a}) }

// engineRun executes fn on one engine over fresh seeded memory, recording
// every observable: final state, the ordered memory-event stream, counts,
// step accounting, and the error (if any).
func engineRun(eng interp.Engine, prog *interp.Program, fn *ir.Func, seed int64, maxSteps int64) (*state, *eventRecorder, interp.Counts, int64, error) {
	rec := &eventRecorder{}
	env := interp.NewEnv(prog, rec)
	env.SetEngine(eng)
	env.SetMaxSteps(maxSteps)
	st := newState(seed)
	_, err := env.Call(fn, st.args()...)
	return st, rec, env.Counts(), env.Steps(), err
}

// engineDifferential runs fn on the bytecode engine and the tree oracle and
// fails the test unless every observable agrees: identical trace event
// sequences, bit-exact final memory, equal instruction counts and step
// totals, and byte-identical errors (including fault class) when either
// engine faults.
func engineDifferential(t *testing.T, prog *interp.Program, fn *ir.Func, seed int64, maxSteps int64, src string) {
	t.Helper()
	stB, recB, cntB, stepsB, errB := engineRun(interp.EngineBytecode, prog, fn, seed, maxSteps)
	stT, recT, cntT, stepsT, errT := engineRun(interp.EngineTree, prog, fn, seed, maxSteps)

	if (errB == nil) != (errT == nil) {
		t.Fatalf("@%s: engines disagree on failure: bytecode=%v tree=%v\nsource:\n%s", fn.Name, errB, errT, src)
	}
	if errB != nil {
		if errB.Error() != errT.Error() || fault.ClassOf(errB) != fault.ClassOf(errT) {
			t.Fatalf("@%s: engines fault differently:\nbytecode: [%s] %v\ntree:     [%s] %v\nsource:\n%s",
				fn.Name, fault.ClassOf(errB), errB, fault.ClassOf(errT), errT, src)
		}
	} else if arr, ok := stB.equal(stT); !ok {
		t.Fatalf("@%s: engines disagree on final memory (array %s)\nsource:\n%s", fn.Name, arr, src)
	}
	if len(recB.events) != len(recT.events) {
		t.Fatalf("@%s: trace lengths differ: bytecode=%d tree=%d\nsource:\n%s",
			fn.Name, len(recB.events), len(recT.events), src)
	}
	for i := range recB.events {
		if recB.events[i] != recT.events[i] {
			t.Fatalf("@%s: trace event %d differs: bytecode=%+v tree=%+v\nsource:\n%s",
				fn.Name, i, recB.events[i], recT.events[i], src)
		}
	}
	if cntB != cntT {
		t.Fatalf("@%s: instruction counts differ:\nbytecode: %+v\ntree:     %+v\nsource:\n%s",
			fn.Name, cntB, cntT, src)
	}
	if stepsB != stepsT {
		t.Fatalf("@%s: step accounting differs: bytecode=%d tree=%d\nsource:\n%s",
			fn.Name, stepsB, stepsT, src)
	}
}

// compileForEngines builds one optimized+DAE module for a seed and returns
// the shared program plus the functions worth differencing (the task and
// every generated access version).
func compileForEngines(t *testing.T, seed int64, src string) (*interp.Program, []*ir.Func) {
	t.Helper()
	mod, err := lower.Compile(src, "fuzz")
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	irf := mod.Func("fuzz")
	if _, err := passes.Optimize(irf); err != nil {
		t.Fatalf("optimize: %v\nsource:\n%s", err, src)
	}
	opts := daepass.Defaults()
	opts.ParamHints = map[string]int64{"n": N, "p": 13, "q": -7}
	results, err := daepass.GenerateModule(mod, opts)
	if err != nil {
		t.Fatalf("generate: %v\nsource:\n%s", err, src)
	}
	fns := []*ir.Func{irf}
	for _, res := range results {
		if res.Access != nil {
			fns = append(fns, res.Access)
		}
		if res.AccessFull != nil {
			fns = append(fns, res.AccessFull)
		}
	}
	return interp.NewProgram(mod), fns
}

// TestEngineDifferentialSeeded is the deterministic regression net for the
// bytecode engine: a fixed block of generator seeds runs the task and its
// access versions on both engines and requires identical traces, outputs,
// counts, steps, and faults. A tight step budget on a second pass checks
// that budget faults land on the same instruction in both engines even when
// the boundary falls inside a superinstruction.
func TestEngineDifferentialSeeded(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(3000 + trial)
		src := New(seed).Task()
		prog, fns := compileForEngines(t, seed, src)
		for _, fn := range fns {
			engineDifferential(t, prog, fn, seed, 4<<20, src)
			// Starve the budget so the run faults mid-flight; the fault
			// position must still agree byte for byte.
			engineDifferential(t, prog, fn, seed, 777, src)
		}
	}
}
