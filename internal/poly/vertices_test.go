package poly

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestVerticesUnitSquare(t *testing.T) {
	p := NewPolyhedron(2, 0)
	p.AddConstraint([]int64{1, 0, 0})  // x >= 0
	p.AddConstraint([]int64{-1, 0, 1}) // x <= 1
	p.AddConstraint([]int64{0, 1, 0})  // y >= 0
	p.AddConstraint([]int64{0, -1, 1}) // y <= 1
	vs := p.Vertices(nil)
	if len(vs) != 4 {
		t.Fatalf("vertices = %d, want 4", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		seen[v[0].RatString()+","+v[1].RatString()] = true
	}
	for _, want := range []string{"0,0", "0,1", "1,0", "1,1"} {
		if !seen[want] {
			t.Errorf("missing vertex %s (got %v)", want, seen)
		}
	}
}

func TestVerticesTriangleParametric(t *testing.T) {
	p := triangle2() // 0 <= i, i+1 <= j <= N-1
	vs := p.Vertices([]int64{5})
	// Vertices: (0,1), (0,4), (3,4).
	if len(vs) != 3 {
		t.Fatalf("vertices = %d, want 3", len(vs))
	}
}

// Property: for random bounded polyhedra, the FM-derived bounds of each
// variable coincide with the min/max over the exact vertex set.
func TestFMBoundsMatchVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		p := NewPolyhedron(2, 0)
		// Bounding box keeps it bounded.
		p.AddConstraint([]int64{1, 0, 6})
		p.AddConstraint([]int64{-1, 0, 6})
		p.AddConstraint([]int64{0, 1, 6})
		p.AddConstraint([]int64{0, -1, 6})
		for k := 0; k < 2+rng.Intn(3); k++ {
			p.AddConstraint([]int64{
				int64(rng.Intn(9) - 4),
				int64(rng.Intn(9) - 4),
				int64(rng.Intn(13) - 2),
			})
		}
		vs := p.Vertices(nil)
		if len(vs) == 0 {
			continue // empty or degenerate
		}
		for dim := 0; dim < 2; dim++ {
			lo, hi := vs[0][dim], vs[0][dim]
			for _, v := range vs[1:] {
				if v[dim].Cmp(lo) < 0 {
					lo = v[dim]
				}
				if v[dim].Cmp(hi) > 0 {
					hi = v[dim]
				}
			}
			vb := p.BoundsOfVar(dim)
			fmLo, ok1 := vb.EvalLower(nil)
			fmHi, ok2 := vb.EvalUpper(nil)
			if !ok1 || !ok2 {
				t.Fatalf("trial %d: unbounded FM bounds on a bounded polyhedron\n%s", trial, p)
			}
			// FM lower = ceil(rational min); FM upper = floor(rational max).
			wantLo := ceilRat(lo)
			wantHi := floorRat(hi)
			if fmLo != wantLo || fmHi != wantHi {
				t.Fatalf("trial %d dim %d: FM [%d,%d], vertices [%s,%s]\n%s",
					trial, dim, fmLo, fmHi, lo.RatString(), hi.RatString(), p)
			}
		}
	}
}

func ceilRat(r *big.Rat) int64 {
	q := new(big.Int).Div(r.Num(), r.Denom()) // floor for positive denom
	if new(big.Int).Mul(q, r.Denom()).Cmp(r.Num()) != 0 {
		q.Add(q, big.NewInt(1))
	}
	return q.Int64()
}

func floorRat(r *big.Rat) int64 {
	q := new(big.Int).Div(r.Num(), r.Denom())
	return q.Int64()
}
