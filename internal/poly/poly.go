// Package poly implements the polyhedral machinery the paper obtains from
// PolyLib and Ehrhart counting: integer polyhedra over iteration variables
// and symbolic parameters, Fourier–Motzkin projection, symbolic per-dimension
// bounds (used to regenerate minimal-depth prefetch loop nests), and exact
// lattice-point enumeration and counting at instantiated parameters (used for
// the NConvUn ≤ NOrig profitability test of §5.1.2).
//
// A Polyhedron has NVar iteration variables followed by NPar parameters; a
// Constraint is an integer vector v meaning v · (x₀..x_{n-1}, p₀..p_{m-1}, 1) ≥ 0.
// Fourier–Motzkin elimination over the rationals yields a superset of the
// integer projection, which is the safe direction for prefetch generation
// (a few extra prefetched addresses, never a missed constraint).
package poly

import (
	"fmt"
	"sort"
	"strings"
)

// Constraint is one affine inequality: V · (vars..., params..., 1) ≥ 0.
type Constraint struct {
	V []int64
}

// clone returns a copy of the constraint.
func (c Constraint) clone() Constraint {
	v := make([]int64, len(c.V))
	copy(v, c.V)
	return Constraint{V: v}
}

// normalize divides the vector by the GCD of its entries.
func (c *Constraint) normalize() {
	g := int64(0)
	for _, x := range c.V {
		g = gcd(g, abs64(x))
	}
	if g > 1 {
		for i := range c.V {
			c.V[i] /= g
		}
	}
}

// trivial reports whether the constraint is 0·x + k ≥ 0.
// The second result is whether it holds (k ≥ 0).
func (c Constraint) trivial() (bool, bool) {
	for i := 0; i < len(c.V)-1; i++ {
		if c.V[i] != 0 {
			return false, false
		}
	}
	return true, c.V[len(c.V)-1] >= 0
}

// Polyhedron is a conjunction of affine inequalities over NVar iteration
// variables and NPar parameters.
type Polyhedron struct {
	NVar int
	NPar int
	Cons []Constraint
}

// NewPolyhedron returns the universe polyhedron with the given dimensions.
func NewPolyhedron(nvar, npar int) *Polyhedron {
	return &Polyhedron{NVar: nvar, NPar: npar}
}

// width returns the constraint vector length.
func (p *Polyhedron) width() int { return p.NVar + p.NPar + 1 }

// Clone returns a deep copy.
func (p *Polyhedron) Clone() *Polyhedron {
	q := NewPolyhedron(p.NVar, p.NPar)
	for _, c := range p.Cons {
		q.Cons = append(q.Cons, c.clone())
	}
	return q
}

// AddConstraint appends v · (x, p, 1) ≥ 0. The vector is copied.
func (p *Polyhedron) AddConstraint(v []int64) {
	if len(v) != p.width() {
		panic(fmt.Sprintf("poly: constraint width %d, want %d", len(v), p.width()))
	}
	c := Constraint{V: append([]int64{}, v...)}
	c.normalize()
	p.Cons = append(p.Cons, c)
}

// AddEquality appends v · (x, p, 1) = 0 as two inequalities.
func (p *Polyhedron) AddEquality(v []int64) {
	p.AddConstraint(v)
	neg := make([]int64, len(v))
	for i, x := range v {
		neg[i] = -x
	}
	p.AddConstraint(neg)
}

// dedup removes duplicate and trivially-true constraints. It reports a
// trivially-false constraint by returning false.
func (p *Polyhedron) dedup() bool {
	seen := make(map[string]bool, len(p.Cons))
	var out []Constraint
	for _, c := range p.Cons {
		if triv, holds := c.trivial(); triv {
			if !holds {
				return false
			}
			continue
		}
		key := conKey(c)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	p.Cons = out
	return true
}

func conKey(c Constraint) string {
	var sb strings.Builder
	for _, x := range c.V {
		fmt.Fprintf(&sb, "%d,", x)
	}
	return sb.String()
}

// EliminateVar projects away iteration variable k by Fourier–Motzkin,
// returning a new polyhedron with NVar-1 variables (indices above k shift
// down). The result over-approximates the integer projection (exact over ℚ).
func (p *Polyhedron) EliminateVar(k int) *Polyhedron {
	if k < 0 || k >= p.NVar {
		panic("poly: EliminateVar index out of range")
	}
	var pos, neg, zero []Constraint
	for _, c := range p.Cons {
		switch {
		case c.V[k] > 0:
			pos = append(pos, c)
		case c.V[k] < 0:
			neg = append(neg, c)
		default:
			zero = append(zero, c)
		}
	}
	q := NewPolyhedron(p.NVar-1, p.NPar)
	drop := func(v []int64) []int64 {
		out := make([]int64, 0, len(v)-1)
		out = append(out, v[:k]...)
		out = append(out, v[k+1:]...)
		return out
	}
	for _, c := range zero {
		q.Cons = append(q.Cons, Constraint{V: drop(c.V)})
	}
	for _, cp := range pos {
		for _, cn := range neg {
			a := cp.V[k]  // > 0
			b := -cn.V[k] // > 0
			nv := make([]int64, len(cp.V))
			for i := range nv {
				nv[i] = b*cp.V[i] + a*cn.V[i]
			}
			nc := Constraint{V: drop(nv)}
			nc.normalize()
			q.Cons = append(q.Cons, nc)
		}
	}
	q.dedup()
	return q
}

// Project eliminates all iteration variables except those in keep (given as
// a set of indices); kept variables retain their relative order.
func (p *Polyhedron) Project(keep map[int]bool) *Polyhedron {
	q := p.Clone()
	// Eliminate from the highest index down so indices stay stable.
	for k := p.NVar - 1; k >= 0; k-- {
		if !keep[k] {
			q = q.EliminateVar(k)
		}
	}
	return q
}

// Feasible reports whether the polyhedron has any rational point for the
// given parameter values (exact emptiness over ℚ via recursive FM; a
// sufficient check for our loop-domain use where FM is exact enough).
func (p *Polyhedron) Feasible(params []int64) bool {
	q := p.Clone()
	for q.NVar > 0 {
		q = q.EliminateVar(q.NVar - 1)
	}
	for _, c := range q.Cons {
		s := c.V[len(c.V)-1]
		for j := 0; j < q.NPar; j++ {
			s += c.V[j] * params[j]
		}
		if s < 0 {
			return false
		}
	}
	return true
}

// gcd returns the non-negative GCD.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the polyhedron for diagnostics with variables x0..xn and
// parameters p0..pm.
func (p *Polyhedron) String() string {
	var rows []string
	for _, c := range p.Cons {
		var terms []string
		for i := 0; i < p.NVar; i++ {
			if c.V[i] != 0 {
				terms = append(terms, fmt.Sprintf("%+d*x%d", c.V[i], i))
			}
		}
		for j := 0; j < p.NPar; j++ {
			if c.V[p.NVar+j] != 0 {
				terms = append(terms, fmt.Sprintf("%+d*p%d", c.V[p.NVar+j], j))
			}
		}
		k := c.V[len(c.V)-1]
		if k != 0 || len(terms) == 0 {
			terms = append(terms, fmt.Sprintf("%+d", k))
		}
		rows = append(rows, strings.Join(terms, " ")+" >= 0")
	}
	sort.Strings(rows)
	return "{ " + strings.Join(rows, " ; ") + " }"
}
