package poly

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// box returns { 0 <= x_i < p_i } over nvar vars and nvar params.
func box(nvar int) *Polyhedron {
	p := NewPolyhedron(nvar, nvar)
	for i := 0; i < nvar; i++ {
		lo := make([]int64, p.width())
		lo[i] = 1
		p.AddConstraint(lo) // x_i >= 0
		hi := make([]int64, p.width())
		hi[i] = -1
		hi[nvar+i] = 1
		hi[len(hi)-1] = -1
		p.AddConstraint(hi) // -x_i + p_i - 1 >= 0  →  x_i <= p_i - 1
	}
	return p
}

// triangle2 returns { 0 <= i < N, i+1 <= j < N } with one parameter N.
func triangle2() *Polyhedron {
	p := NewPolyhedron(2, 1)
	p.AddConstraint([]int64{1, 0, 0, 0})   // i >= 0
	p.AddConstraint([]int64{-1, 0, 1, -1}) // i <= N-1
	p.AddConstraint([]int64{-1, 1, 0, -1}) // j >= i+1
	p.AddConstraint([]int64{0, -1, 1, -1}) // j <= N-1
	return p
}

func TestCountBox(t *testing.T) {
	p := box(2)
	if n := p.CountPoints([]int64{4, 5}); n != 20 {
		t.Errorf("count = %d, want 20", n)
	}
	if n := p.CountPoints([]int64{0, 5}); n != 0 {
		t.Errorf("empty box count = %d, want 0", n)
	}
}

func TestCountTriangle(t *testing.T) {
	p := triangle2()
	// pairs (i,j), 0<=i<j<N: C(N,2)
	for _, n := range []int64{1, 2, 3, 5, 10} {
		want := n * (n - 1) / 2
		if got := p.CountPoints([]int64{n}); got != want {
			t.Errorf("triangle count N=%d: %d, want %d", n, got, want)
		}
	}
}

func TestEnumerateLexOrder(t *testing.T) {
	p := triangle2()
	var pts [][]int64
	p.Enumerate([]int64{4}, func(pt []int64) {
		pts = append(pts, append([]int64{}, pt...))
	})
	want := [][]int64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(pts) != len(want) {
		t.Fatalf("points = %d, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i][0] != want[i][0] || pts[i][1] != want[i][1] {
			t.Errorf("pt[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestBoundsOfVarTriangle(t *testing.T) {
	p := triangle2()
	// After projecting j away, i ranges over [0, N-2].
	bi := p.BoundsOfVar(0)
	lo, ok := bi.EvalLower([]int64{10})
	if !ok || lo != 0 {
		t.Errorf("i lower = %d (ok=%v), want 0", lo, ok)
	}
	hi, ok := bi.EvalUpper([]int64{10})
	if !ok || hi != 8 {
		t.Errorf("i upper = %d (ok=%v), want 8", hi, ok)
	}
	// j ranges over [1, N-1].
	bj := p.BoundsOfVar(1)
	lo, _ = bj.EvalLower([]int64{10})
	hi, _ = bj.EvalUpper([]int64{10})
	if lo != 1 || hi != 9 {
		t.Errorf("j bounds = [%d, %d], want [1, 9]", lo, hi)
	}
}

func TestFeasible(t *testing.T) {
	p := triangle2()
	if !p.Feasible([]int64{2}) {
		t.Error("triangle with N=2 should be feasible")
	}
	if p.Feasible([]int64{1}) {
		t.Error("triangle with N=1 should be empty")
	}
}

func TestEliminatePreservesIntegerPoints(t *testing.T) {
	// FM projection must contain exactly the shadow of the integer points
	// for these dense domains: check both directions on the triangle.
	p := triangle2()
	params := []int64{7}
	proj := p.EliminateVar(1) // keep i
	want := map[int64]bool{}
	p.Enumerate(params, func(pt []int64) { want[pt[0]] = true })
	got := map[int64]bool{}
	proj.Enumerate(params, func(pt []int64) { got[pt[0]] = true })
	for i := range want {
		if !got[i] {
			t.Errorf("projection lost point i=%d", i)
		}
	}
	if len(got) != len(want) {
		t.Errorf("projection has %d points, original shadow has %d", len(got), len(want))
	}
}

// Property: for random small polyhedra, every enumerated point satisfies all
// constraints, and projection never loses the shadow of a point.
func TestEnumerationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		p := NewPolyhedron(2, 0)
		// Bounding box to keep things finite.
		p.AddConstraint([]int64{1, 0, 5})
		p.AddConstraint([]int64{-1, 0, 5})
		p.AddConstraint([]int64{0, 1, 5})
		p.AddConstraint([]int64{0, -1, 5})
		for k := 0; k < 3; k++ {
			p.AddConstraint([]int64{
				int64(rng.Intn(7) - 3),
				int64(rng.Intn(7) - 3),
				int64(rng.Intn(11) - 2),
			})
		}
		var pts [][]int64
		p.Enumerate(nil, func(pt []int64) {
			pts = append(pts, append([]int64{}, pt...))
		})
		// Check every point satisfies every constraint.
		for _, pt := range pts {
			for _, c := range p.Cons {
				if c.V[0]*pt[0]+c.V[1]*pt[1]+c.V[2] < 0 {
					t.Fatalf("trial %d: enumerated point %v violates %v", trial, pt, c.V)
				}
			}
		}
		// Brute force reference count.
		ref := 0
		for x := int64(-5); x <= 5; x++ {
			for y := int64(-5); y <= 5; y++ {
				ok := true
				for _, c := range p.Cons {
					if c.V[0]*x+c.V[1]*y+c.V[2] < 0 {
						ok = false
						break
					}
				}
				if ok {
					ref++
				}
			}
		}
		if len(pts) != ref {
			t.Fatalf("trial %d: enumerated %d points, brute force %d\n%s", trial, len(pts), ref, p)
		}
		// Projection soundness: shadow of every point is in the projection.
		proj := p.EliminateVar(1)
		shadow := map[int64]bool{}
		proj.Enumerate(nil, func(pt []int64) { shadow[pt[0]] = true })
		for _, pt := range pts {
			if !shadow[pt[0]] {
				t.Fatalf("trial %d: projection lost x=%d", trial, pt[0])
			}
		}
	}
}

func TestAffineMapImage(t *testing.T) {
	// Domain: triangle 0<=i<j<N. Map (i,j) → (j, i): the transposed
	// triangle. Count of distinct images = count of domain points
	// (map is injective).
	p := triangle2()
	m := &AffineMap{NVar: 2, NPar: 1, Rows: [][]int64{
		{0, 1, 0, 0}, // j
		{1, 0, 0, 0}, // i
	}}
	params := []int64{6}
	imgs := ImagePoints(p, m, params)
	if int64(len(imgs)) != p.CountPoints(params) {
		t.Errorf("images = %d, domain = %d", len(imgs), p.CountPoints(params))
	}
	for _, pt := range imgs {
		if !(pt[1] < pt[0]) {
			t.Errorf("image %v should satisfy i < j transposed", pt)
		}
	}
}

func TestCountDistinctImagesOverlap(t *testing.T) {
	// Two accesses A[i] and A[i+1] over 0<=i<N touch N+1 distinct cells.
	dom := NewPolyhedron(1, 1)
	dom.AddConstraint([]int64{1, 0, 0})
	dom.AddConstraint([]int64{-1, 1, -1})
	m1 := &AffineMap{NVar: 1, NPar: 1, Rows: [][]int64{{1, 0, 0}}}
	m2 := &AffineMap{NVar: 1, NPar: 1, Rows: [][]int64{{1, 0, 1}}}
	got := CountDistinctImages([]*Polyhedron{dom, dom}, []*AffineMap{m1, m2}, []int64{10})
	if got != 11 {
		t.Errorf("distinct images = %d, want 11", got)
	}
}

func TestProjectKeep(t *testing.T) {
	p := box(3)
	q := p.Project(map[int]bool{1: true})
	if q.NVar != 1 {
		t.Fatalf("projected NVar = %d, want 1", q.NVar)
	}
	if n := q.CountPoints([]int64{3, 4, 5}); n != 4 {
		t.Errorf("projected count = %d, want 4", n)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	cases := []struct{ a, b, ceil, floor int64 }{
		{7, 2, 4, 3}, {-7, 2, -3, -4}, {6, 3, 2, 2}, {-6, 3, -2, -2},
		{0, 5, 0, 0}, {1, 7, 1, 0}, {-1, 7, 0, -1},
	}
	for _, c := range cases {
		if g := ceilDiv(c.a, c.b); g != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, g, c.ceil)
		}
		if g := floorDiv(c.a, c.b); g != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, g, c.floor)
		}
	}
}

func TestParamExprOps(t *testing.T) {
	e := ParamExpr{Coef: []int64{2, -1}, Const: 3}
	if e.Eval([]int64{5, 4}) != 2*5-4+3 {
		t.Error("Eval wrong")
	}
	o := ParamExpr{Coef: []int64{1, 0}, Const: 1}
	d := e.Sub(o)
	if d.Eval([]int64{5, 4}) != e.Eval([]int64{5, 4})-o.Eval([]int64{5, 4}) {
		t.Error("Sub wrong")
	}
	if !e.Equal(e) || e.Equal(o) {
		t.Error("Equal wrong")
	}
	if e.IsConst() || (ParamExpr{Coef: []int64{0, 0}, Const: 9}).IsConst() == false {
		t.Error("IsConst wrong")
	}
}

// Property: normalize never changes the integer solution set (checked via
// sign preservation on random vectors).
func TestNormalizeProperty(t *testing.T) {
	prop := func(a, b, c int16, x, y int8) bool {
		con := Constraint{V: []int64{int64(a) * 2, int64(b) * 2, int64(c) * 2}}
		before := con.V[0]*int64(x)+con.V[1]*int64(y)+con.V[2] >= 0
		con.normalize()
		after := con.V[0]*int64(x)+con.V[1]*int64(y)+con.V[2] >= 0
		return before == after
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDedupAndTrivial(t *testing.T) {
	p := NewPolyhedron(1, 0)
	p.AddConstraint([]int64{1, 0})
	p.AddConstraint([]int64{1, 0})
	p.AddConstraint([]int64{0, 5}) // trivially true
	if !p.dedup() {
		t.Fatal("dedup claims infeasible")
	}
	if len(p.Cons) != 1 {
		t.Errorf("constraints after dedup = %d, want 1", len(p.Cons))
	}
	p.AddConstraint([]int64{0, -3}) // trivially false
	if p.dedup() {
		t.Error("dedup should detect trivially-false constraint")
	}
}
