package poly

import "math/big"

// Vertices enumerates the vertices of the polyhedron at fixed parameter
// values, by solving every d-subset of active constraints exactly over the
// rationals and keeping the feasible solutions. Exponential in the
// constraint count, fine for the small systems loop nests produce; used to
// cross-validate the Fourier–Motzkin bounds (a bounded polyhedron's min/max
// along any coordinate is attained at a vertex).
func (p *Polyhedron) Vertices(params []int64) [][]*big.Rat {
	d := p.NVar
	if d == 0 {
		return nil
	}
	// Materialize constraints as a·x ≥ b with parameters substituted.
	cons := make([]vcon, len(p.Cons))
	for i, c := range p.Cons {
		a := make([]*big.Rat, d)
		for j := 0; j < d; j++ {
			a[j] = big.NewRat(c.V[j], 1)
		}
		rhs := c.V[len(c.V)-1]
		for j := 0; j < p.NPar; j++ {
			rhs += c.V[d+j] * params[j]
		}
		cons[i] = vcon{a: a, b: big.NewRat(-rhs, 1)}
	}

	var verts [][]*big.Rat
	seen := map[string]bool{}
	idx := make([]int, d)
	var choose func(start, k int)
	choose = func(start, k int) {
		if k == d {
			if pt, ok := solveSquare(cons, idx, d); ok && feasible(cons, pt) {
				key := ratKey(pt)
				if !seen[key] {
					seen[key] = true
					verts = append(verts, pt)
				}
			}
			return
		}
		for i := start; i < len(cons); i++ {
			idx[k] = i
			choose(i+1, k+1)
		}
	}
	choose(0, 0)
	return verts
}

// vcon is one materialized constraint a·x ≥ b.
type vcon struct {
	a []*big.Rat
	b *big.Rat
}

// solveSquare solves the d×d system formed by the chosen constraints taken
// as equalities, via rational Gaussian elimination.
func solveSquare(cons []vcon, idx []int, d int) ([]*big.Rat, bool) {
	// Build augmented matrix.
	m := make([][]*big.Rat, d)
	for r := 0; r < d; r++ {
		row := make([]*big.Rat, d+1)
		for c := 0; c < d; c++ {
			row[c] = new(big.Rat).Set(cons[idx[r]].a[c])
		}
		row[d] = new(big.Rat).Set(cons[idx[r]].b)
		m[r] = row
	}
	for col := 0; col < d; col++ {
		// Find pivot.
		piv := -1
		for r := col; r < d; r++ {
			if m[r][col].Sign() != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false // singular: constraints not independent
		}
		m[col], m[piv] = m[piv], m[col]
		inv := new(big.Rat).Inv(m[col][col])
		for c := col; c <= d; c++ {
			m[col][c].Mul(m[col][c], inv)
		}
		for r := 0; r < d; r++ {
			if r == col || m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(m[r][col])
			for c := col; c <= d; c++ {
				t := new(big.Rat).Mul(f, m[col][c])
				m[r][c].Sub(m[r][c], t)
			}
		}
	}
	out := make([]*big.Rat, d)
	for r := 0; r < d; r++ {
		out[r] = m[r][d]
	}
	return out, true
}

func feasible(cons []vcon, pt []*big.Rat) bool {
	for _, c := range cons {
		s := new(big.Rat)
		for j, a := range c.a {
			t := new(big.Rat).Mul(a, pt[j])
			s.Add(s, t)
		}
		if s.Cmp(c.b) < 0 {
			return false
		}
	}
	return true
}

func ratKey(pt []*big.Rat) string {
	s := ""
	for _, r := range pt {
		s += r.RatString() + "/"
	}
	return s
}
