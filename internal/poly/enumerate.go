package poly

// Enumerate visits every integer point of the polyhedron at the given
// parameter values, in lexicographic order. The yield function receives a
// reused buffer; copy it to retain. Enumeration precomputes the chain of
// projections so that each level's bounds are evaluated from the outer
// coordinates (the classic polyhedron-scanning recursion).
func (p *Polyhedron) Enumerate(params []int64, yield func(pt []int64)) {
	if p.NVar == 0 {
		if p.Feasible(params) {
			yield(nil)
		}
		return
	}
	// proj[i] has variables 0..i (vars i+1.. eliminated).
	proj := make([]*Polyhedron, p.NVar)
	proj[p.NVar-1] = p.Clone()
	for i := p.NVar - 1; i > 0; i-- {
		proj[i-1] = proj[i].EliminateVar(i)
	}
	pt := make([]int64, p.NVar)
	var scan func(level int)
	scan = func(level int) {
		lo, hi, ok := levelBounds(proj[level], level, pt, params)
		if !ok {
			return
		}
		for v := lo; v <= hi; v++ {
			pt[level] = v
			if level == p.NVar-1 {
				yield(pt)
			} else {
				scan(level + 1)
			}
		}
	}
	scan(0)
}

// levelBounds computes the inclusive range of variable `level` in q (which
// has variables 0..level), given outer coordinates pt[0..level-1].
func levelBounds(q *Polyhedron, level int, pt, params []int64) (int64, int64, bool) {
	var lo, hi int64
	haveLo, haveHi := false, false
	for _, c := range q.Cons {
		a := c.V[level]
		// rest = Σ_{i<level} c_i·pt_i + Σ_j cp_j·params_j + const
		rest := c.V[len(c.V)-1]
		for i := 0; i < level; i++ {
			rest += c.V[i] * pt[i]
		}
		for j := 0; j < q.NPar; j++ {
			rest += c.V[q.NVar+j] * params[j]
		}
		switch {
		case a > 0:
			v := ceilDiv(-rest, a)
			if !haveLo || v > lo {
				lo, haveLo = v, true
			}
		case a < 0:
			v := floorDiv(rest, -a)
			if !haveHi || v < hi {
				hi, haveHi = v, true
			}
		default:
			if rest < 0 {
				return 0, 0, false // infeasible at these outer coordinates
			}
		}
	}
	if !haveLo || !haveHi {
		// Unbounded variables cannot be enumerated; treat as empty (the DAE
		// pass never builds unbounded loop domains).
		return 0, 0, false
	}
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// CountPoints returns the number of integer points at the given parameter
// values (the role Ehrhart counting plays in the paper, evaluated at an
// instantiated parameter vector).
func (p *Polyhedron) CountPoints(params []int64) int64 {
	var n int64
	p.Enumerate(params, func([]int64) { n++ })
	return n
}

// AffineMap maps iteration points to index-space points: each output
// coordinate is Rows[d] · (vars..., params..., 1).
type AffineMap struct {
	NVar int
	NPar int
	Rows [][]int64
}

// Apply maps one iteration point.
func (m *AffineMap) Apply(pt, params []int64) []int64 {
	out := make([]int64, len(m.Rows))
	for d, row := range m.Rows {
		s := row[len(row)-1]
		for i := 0; i < m.NVar; i++ {
			s += row[i] * pt[i]
		}
		for j := 0; j < m.NPar; j++ {
			s += row[m.NVar+j] * params[j]
		}
		out[d] = s
	}
	return out
}

// ImagePoints returns the set of distinct image points of dom under m at the
// given parameters, as a map keyed by the image coordinates.
func ImagePoints(dom *Polyhedron, m *AffineMap, params []int64) map[string][]int64 {
	out := make(map[string][]int64)
	dom.Enumerate(params, func(pt []int64) {
		img := m.Apply(pt, params)
		out[pointKey(img)] = img
	})
	return out
}

// CountDistinctImages counts the distinct image points of several
// (domain, map) pairs at the given parameters — NOrig of §5.1.2: the number
// of unique memory locations touched by the original accesses.
func CountDistinctImages(doms []*Polyhedron, maps []*AffineMap, params []int64) int64 {
	seen := make(map[string]bool)
	for i := range doms {
		dom, m := doms[i], maps[i]
		dom.Enumerate(params, func(pt []int64) {
			seen[pointKey(m.Apply(pt, params))] = true
		})
	}
	return int64(len(seen))
}

func pointKey(pt []int64) string {
	b := make([]byte, 0, len(pt)*9)
	for _, v := range pt {
		for k := 0; k < 8; k++ {
			b = append(b, byte(v>>(8*k)))
		}
		b = append(b, ':')
	}
	return string(b)
}
