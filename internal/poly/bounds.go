package poly

import "fmt"

// ParamExpr is an affine expression over the parameters only:
// Coef · params + Const.
type ParamExpr struct {
	Coef  []int64
	Const int64
}

// Eval evaluates the expression at the given parameter values.
func (e ParamExpr) Eval(params []int64) int64 {
	s := e.Const
	for i, c := range e.Coef {
		s += c * params[i]
	}
	return s
}

// Equal reports structural equality.
func (e ParamExpr) Equal(o ParamExpr) bool {
	if e.Const != o.Const || len(e.Coef) != len(o.Coef) {
		return false
	}
	for i := range e.Coef {
		if e.Coef[i] != o.Coef[i] {
			return false
		}
	}
	return true
}

// Sub returns e - o.
func (e ParamExpr) Sub(o ParamExpr) ParamExpr {
	out := ParamExpr{Coef: make([]int64, len(e.Coef)), Const: e.Const - o.Const}
	copy(out.Coef, e.Coef)
	for i, c := range o.Coef {
		out.Coef[i] -= c
	}
	return out
}

// IsConst reports whether all parameter coefficients are zero.
func (e ParamExpr) IsConst() bool {
	for _, c := range e.Coef {
		if c != 0 {
			return false
		}
	}
	return true
}

// String renders the expression with parameters named p0..pm.
func (e ParamExpr) String() string {
	s := ""
	for i, c := range e.Coef {
		if c != 0 {
			s += fmt.Sprintf("%+d*p%d ", c, i)
		}
	}
	return fmt.Sprintf("%s%+d", s, e.Const)
}

// Bound is one lower or upper bound on a variable: Num/Den with Den ≥ 1.
// A lower bound means var ≥ ceil(Num/Den); an upper bound var ≤ floor(Num/Den).
type Bound struct {
	Num ParamExpr
	Den int64
}

// VarBounds describes a variable's bounds after projection: the variable
// ranges over [max(Lower), min(Upper)] (each list non-empty for bounded
// domains; loop codegen takes max/min across the lists).
type VarBounds struct {
	Lower []Bound
	Upper []Bound
}

// BoundsOfVar returns the bounds of iteration variable k in terms of the
// parameters, after projecting away all other iteration variables.
// Constraints involving only parameters are dropped (they are guards that
// hold whenever the enclosing task runs).
func (p *Polyhedron) BoundsOfVar(k int) VarBounds {
	q := p.Project(map[int]bool{k: true})
	// q now has exactly one variable (index 0).
	var vb VarBounds
	for _, c := range q.Cons {
		a := c.V[0]
		if a == 0 {
			continue
		}
		num := ParamExpr{Coef: make([]int64, p.NPar)}
		for j := 0; j < p.NPar; j++ {
			num.Coef[j] = c.V[1+j]
		}
		num.Const = c.V[len(c.V)-1]
		if a > 0 {
			// a·x + num ≥ 0  →  x ≥ ceil(-num / a)
			vb.Lower = append(vb.Lower, Bound{Num: negate(num), Den: a})
		} else {
			// -|a|·x + num ≥ 0  →  x ≤ floor(num / |a|)
			vb.Upper = append(vb.Upper, Bound{Num: num, Den: -a})
		}
	}
	return vb
}

func negate(e ParamExpr) ParamExpr {
	out := ParamExpr{Coef: make([]int64, len(e.Coef)), Const: -e.Const}
	for i, c := range e.Coef {
		out.Coef[i] = -c
	}
	return out
}

// EvalLower returns the tightest (largest) lower bound at the given params.
func (vb VarBounds) EvalLower(params []int64) (int64, bool) {
	if len(vb.Lower) == 0 {
		return 0, false
	}
	best := int64(0)
	for i, b := range vb.Lower {
		v := ceilDiv(b.Num.Eval(params), b.Den)
		if i == 0 || v > best {
			best = v
		}
	}
	return best, true
}

// EvalUpper returns the tightest (smallest) upper bound at the given params.
func (vb VarBounds) EvalUpper(params []int64) (int64, bool) {
	if len(vb.Upper) == 0 {
		return 0, false
	}
	best := int64(0)
	for i, b := range vb.Upper {
		v := floorDiv(b.Num.Eval(params), b.Den)
		if i == 0 || v < best {
			best = v
		}
	}
	return best, true
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) != (b > 0) {
		q--
	}
	return q
}
