package rt

import (
	"context"
	"errors"
	"math"
	"testing"

	"dae/internal/fault"
)

// faultNthAccess returns a PhaseHook that faults the nth access-phase entry
// (0-based) with the given error, leaving every other phase untouched.
func faultNthAccess(n int, err error) func(string, bool) error {
	calls := 0
	return func(task string, access bool) error {
		if !access {
			return nil
		}
		calls++
		if calls-1 == n {
			return err
		}
		return nil
	}
}

// TestSupervisorQuarantinesAccessFault: an access-phase trap under
// DegradeAccess quarantines the task type, the faulted task and every later
// instance run coupled, the collection completes, and the answer is right.
func TestSupervisorQuarantinesAccessFault(t *testing.T) {
	w, h := buildStream(t, 4096, 256) // 16 instances of one task type
	cfg := DefaultTraceConfig()
	cfg.Degrade = DegradeAccess
	cfg.PhaseHook = faultNthAccess(3, fault.NewTrap(fault.TrapOutOfBounds, "triad_access", "", "injected"))
	tr, err := RunContext(context.Background(), w, cfg)
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if len(tr.Records) != 16 {
		t.Fatalf("records = %d, want 16", len(tr.Records))
	}
	if got := tr.Quarantined["triad"]; got != "trap" {
		t.Errorf("Quarantined[triad] = %q, want \"trap\"", got)
	}
	if !tr.Degraded() {
		t.Error("trace does not report itself degraded")
	}
	for i, rec := range tr.Records {
		healthy := i < 3
		if healthy && (!rec.HasAccess || rec.Degraded || rec.FaultKind != "") {
			t.Errorf("record %d should be healthy: %+v", i, rec)
		}
		if !healthy && (rec.HasAccess || !rec.Degraded || rec.FaultKind != "trap") {
			t.Errorf("record %d should be degraded coupled: %+v", i, rec)
		}
		if rec.Failed {
			t.Errorf("record %d marked failed by an access fault", i)
		}
	}
	// The degraded tasks still computed: every element is right.
	a := h.Segs()[0]
	for i := 0; i < 4096; i++ {
		want := float64(i) + 2.5*float64(2*i)
		if math.Abs(a.F[i]-want) > 1e-9 {
			t.Fatalf("A[%d] = %g, want %g (coupled replay missing?)", i, a.F[i], want)
		}
	}
}

// TestSupervisorRecoversAccessPanic: a crashing access phase degrades the
// same way a clean fault does — the run completes with the right answer.
func TestSupervisorRecoversAccessPanic(t *testing.T) {
	w, h := buildStream(t, 2048, 256)
	cfg := DefaultTraceConfig()
	cfg.Degrade = DegradeAccess
	calls := 0
	cfg.PhaseHook = func(task string, access bool) error {
		if access {
			calls++
			if calls == 1 {
				panic("injected access crash")
			}
		}
		return nil
	}
	tr, err := RunContext(context.Background(), w, cfg)
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if got := tr.Quarantined["triad"]; got != "panic" {
		t.Errorf("Quarantined[triad] = %q, want \"panic\"", got)
	}
	a := h.Segs()[0]
	for i := 0; i < 2048; i += 101 {
		want := float64(i) + 2.5*float64(2*i)
		if math.Abs(a.F[i]-want) > 1e-9 {
			t.Fatalf("A[%d] = %g, want %g", i, a.F[i], want)
		}
	}
}

// TestDegradeOffAbortsOnAccessFault: without supervision the first access
// fault still aborts the whole trace (the legacy contract).
func TestDegradeOffAbortsOnAccessFault(t *testing.T) {
	w, _ := buildStream(t, 1024, 256)
	cfg := DefaultTraceConfig()
	cfg.PhaseHook = faultNthAccess(0, fault.NewTrap(fault.TrapNilDeref, "triad_access", "", "injected"))
	tr, err := RunContext(context.Background(), w, cfg)
	if err == nil || !errors.Is(err, fault.ErrTrap) {
		t.Fatalf("DegradeOff swallowed the fault: tr=%v err=%v", tr, err)
	}
}

// TestExecuteFaultNeverSilentlyDegraded: the supervisor replays only
// store-free access phases. An injected execute-phase trap must surface as a
// run failure under DegradeOff and DegradeAccess, and even DegradeFull must
// return the fault alongside the completed trace.
func TestExecuteFaultNeverSilentlyDegraded(t *testing.T) {
	inject := func() func(string, bool) error {
		calls := 0
		return func(task string, access bool) error {
			if !access {
				calls++
				if calls == 2 {
					return fault.NewTrap(fault.TrapDivByZero, "triad", "", "injected exec fault")
				}
			}
			return nil
		}
	}
	for _, mode := range []DegradeMode{DegradeOff, DegradeAccess} {
		w, _ := buildStream(t, 1024, 256)
		cfg := DefaultTraceConfig()
		cfg.Degrade = mode
		cfg.PhaseHook = inject()
		_, err := RunContext(context.Background(), w, cfg)
		if !errors.Is(err, fault.ErrTrap) {
			t.Errorf("%v: execute fault not surfaced: %v", mode, err)
		}
	}

	// DegradeFull: the batch completes, exactly one task is marked failed,
	// and the fault is still returned — containment, not masking.
	w, _ := buildStream(t, 1024, 256)
	cfg := DefaultTraceConfig()
	cfg.Degrade = DegradeFull
	cfg.PhaseHook = inject()
	tr, err := RunContext(context.Background(), w, cfg)
	if !errors.Is(err, fault.ErrTrap) {
		t.Fatalf("DegradeFull masked the execute fault: %v", err)
	}
	if tr == nil {
		t.Fatal("DegradeFull did not return the completed trace")
	}
	if len(tr.Records) != 4 {
		t.Fatalf("batch did not complete: %d records, want 4", len(tr.Records))
	}
	failed := 0
	for i, rec := range tr.Records {
		if rec.Failed {
			failed++
			if rec.FaultKind != "trap" {
				t.Errorf("record %d FaultKind = %q, want \"trap\"", i, rec.FaultKind)
			}
		}
	}
	if failed != 1 {
		t.Errorf("failed records = %d, want exactly 1", failed)
	}
	if !tr.Degraded() {
		t.Error("trace with a failed task does not report itself degraded")
	}
}

// TestSupervisionIdleOnHealthyRun: turning the supervisor on must not change
// a fault-free trace — records stay identical to an unsupervised run.
func TestSupervisionIdleOnHealthyRun(t *testing.T) {
	w1, _ := buildStream(t, 2048, 256)
	plain, err := Run(w1, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := buildStream(t, 2048, 256)
	cfg := DefaultTraceConfig()
	cfg.Degrade = DegradeFull
	supervised, err := RunContext(context.Background(), w2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Records) != len(supervised.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(plain.Records), len(supervised.Records))
	}
	for i := range plain.Records {
		if plain.Records[i] != supervised.Records[i] {
			t.Fatalf("record %d differs under supervision:\n%+v\n%+v",
				i, plain.Records[i], supervised.Records[i])
		}
	}
	if len(supervised.Quarantined) != 0 {
		t.Errorf("healthy run grew a quarantine set: %v", supervised.Quarantined)
	}
}

// TestEvaluateDegradedPinnedAtFixedFreq: degraded records forfeit the DVFS
// benefit — under any policy they are charged at Machine.FixedFreq, so a
// fully-degraded trace evaluated with PolicyMinMax matches the same coupled
// work under PolicyFixed.
func TestEvaluateDegradedPinnedAtFixedFreq(t *testing.T) {
	w, _ := buildStream(t, 2048, 256)
	cfg := DefaultTraceConfig()
	cfg.Decoupled = false
	coupled, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	baseline := Evaluate(coupled, m, PolicyFixed)

	degraded := *coupled
	degraded.Records = append([]TaskRecord(nil), coupled.Records...)
	for i := range degraded.Records {
		degraded.Records[i].Degraded = true
		degraded.Records[i].FaultKind = "trap"
	}
	for _, pol := range []FreqPolicy{PolicyMinMax, PolicyOptimalEDP, PolicyOnline} {
		got := Evaluate(&degraded, m, pol)
		if math.Abs(got.Time-baseline.Time) > 1e-12 || math.Abs(got.Energy-baseline.Energy) > 1e-12 {
			t.Errorf("policy %v not pinned: T=%g vs %g, E=%g vs %g",
				pol, got.Time, baseline.Time, got.Energy, baseline.Energy)
		}
		if got.DegradedTasks != len(degraded.Records) {
			t.Errorf("policy %v DegradedTasks = %d, want %d", pol, got.DegradedTasks, len(degraded.Records))
		}
	}

	// A failed record contributes nothing at all.
	failed := *coupled
	failed.Records = append([]TaskRecord(nil), coupled.Records...)
	failed.Records[0].Failed = true
	got := Evaluate(&failed, m, PolicyFixed)
	if got.FailedTasks != 1 {
		t.Errorf("FailedTasks = %d, want 1", got.FailedTasks)
	}
	// The makespan is a max over cores, so dropping one task's work may not
	// move it — but the energy must drop (idle power < busy power).
	if got.Energy >= baseline.Energy {
		t.Errorf("failed task still charged: E=%g, baseline %g", got.Energy, baseline.Energy)
	}
}

// TestTraceJSONRoundTripsSupervisionFields: quarantine set and per-record
// degradation flags survive Save/Load (trace format v2).
func TestTraceJSONRoundTripsSupervisionFields(t *testing.T) {
	tr := &Trace{
		Workload: "x", Decoupled: true, Cores: 2, NumBatches: 1,
		Records: []TaskRecord{
			{Name: "a", Core: 0, Batch: 0, Degraded: true, FaultKind: "trap"},
			{Name: "b", Core: 1, Batch: 0, Failed: true, FaultKind: "panic"},
		},
		Quarantined: map[string]string{"a": "trap"},
	}
	b, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Quarantined["a"] != "trap" {
		t.Errorf("quarantine set lost: %v", got.Quarantined)
	}
	if !got.Records[0].Degraded || got.Records[0].FaultKind != "trap" {
		t.Errorf("degraded flags lost: %+v", got.Records[0])
	}
	if !got.Records[1].Failed || got.Records[1].FaultKind != "panic" {
		t.Errorf("failed flags lost: %+v", got.Records[1])
	}
}

// TestFingerprintCoversDegradeMode: supervision participates in the cache
// key — a supervised trace must never be served from an unsupervised one.
func TestFingerprintCoversDegradeMode(t *testing.T) {
	a := DefaultTraceConfig()
	b := DefaultTraceConfig()
	b.Degrade = DegradeAccess
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprints identical despite different Degrade modes")
	}
}
