package rt

import (
	"bytes"
	"math"
	"testing"

	"dae/internal/dae"
	"dae/internal/dvfs"
	"dae/internal/interp"
	"dae/internal/mem"
)

// streamSrc is a memory-bound streaming kernel processed in task-sized
// chunks, the canonical DAE-friendly workload.
const streamSrc = `
task triad(float A[n], float B[n], float C[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		A[i] = B[i] + 2.5 * C[i];
	}
}
`

// buildStream creates the workload plus its heap: total elements, chunked
// into tasks of chunk elements each, all in one parallel batch.
func buildStream(t testing.TB, total, chunk int) (*Workload, *interp.Heap) {
	t.Helper()
	opts := dae.Defaults()
	opts.ParamHints = map[string]int64{"n": int64(total), "lo": 0, "hi": int64(chunk)}
	w, results, err := BuildWorkload("stream", streamSrc, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if results["triad"].Access == nil {
		t.Fatalf("no access version: %s", results["triad"].Reason)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", total)
	b := h.AllocFloat("B", total)
	c := h.AllocFloat("C", total)
	for i := 0; i < total; i++ {
		b.F[i] = float64(i)
		c.F[i] = float64(2 * i)
	}
	var batch []Task
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		batch = append(batch, Task{Name: "triad", Args: []interp.Value{
			interp.Ptr(a), interp.Ptr(b), interp.Ptr(c),
			interp.Int(int64(total)), interp.Int(int64(lo)), interp.Int(int64(hi)),
		}})
	}
	w.Batches = [][]Task{batch}
	return w, h
}

func TestTraceRunsAndComputes(t *testing.T) {
	w, h := buildStream(t, 4096, 256)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 16 {
		t.Fatalf("records = %d, want 16", len(tr.Records))
	}
	// The computation must actually have happened.
	a := h.Segs()[0]
	for i := 0; i < 4096; i += 997 {
		want := float64(i) + 2.5*float64(2*i)
		if math.Abs(a.F[i]-want) > 1e-9 {
			t.Fatalf("A[%d] = %g, want %g", i, a.F[i], want)
		}
	}
	// Cores assigned round-robin.
	for i, rec := range tr.Records {
		if rec.Core != i%4 {
			t.Errorf("record %d on core %d, want %d", i, rec.Core, i%4)
		}
		if !rec.HasAccess {
			t.Errorf("record %d has no access phase", i)
		}
	}
}

func TestAccessPhaseWarmsExecutePhase(t *testing.T) {
	w, _ := buildStream(t, 8192, 512)
	trDAE, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := buildStream(t, 8192, 512)
	cfg := DefaultTraceConfig()
	cfg.Decoupled = false
	trCAE, err := Run(w2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Execute-phase DRAM load misses must be far fewer in the decoupled run:
	// the access phase prefetched the data into the private caches.
	var missDAE, missCAE int64
	for _, r := range trDAE.Records {
		missDAE += r.ExecWork.Mem.At[mem.Load][mem.Mem] + r.ExecWork.Mem.At[mem.Load][mem.L3]
	}
	for _, r := range trCAE.Records {
		missCAE += r.ExecWork.Mem.At[mem.Load][mem.Mem] + r.ExecWork.Mem.At[mem.Load][mem.L3]
	}
	if missCAE == 0 {
		t.Fatal("coupled run should miss (working set exceeds private caches)")
	}
	if missDAE*5 > missCAE {
		t.Errorf("decoupled execute misses = %d, coupled = %d; want at least 5× fewer", missDAE, missCAE)
	}
}

func TestDecoupledPreservesPerformanceUnderDVFS(t *testing.T) {
	// The paper's headline behaviour: CAE at low frequency loses time;
	// DAE with min/max keeps time near CAE@fmax while cutting EDP.
	w, _ := buildStream(t, 16384, 512)
	trDAE, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := buildStream(t, 16384, 512)
	cfg := DefaultTraceConfig()
	cfg.Decoupled = false
	trCAE, err := Run(w2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	m := DefaultMachine()
	base := Evaluate(trCAE, m, PolicyFixed) // CAE @ fmax

	mMin := m
	mMin.FixedFreq = m.DVFS.Fmin().Freq
	caeMin := Evaluate(trCAE, mMin, PolicyFixed)

	daeMinMax := Evaluate(trDAE, m, PolicyMinMax)

	// CAE at fmin on a partially memory-bound kernel is slower than fmax.
	if caeMin.Time <= base.Time*1.05 {
		t.Errorf("CAE@fmin time %.4g should exceed CAE@fmax %.4g", caeMin.Time, base.Time)
	}
	// DAE min/max must hold performance within ~10% of the fmax baseline.
	if daeMinMax.Time > base.Time*1.10 {
		t.Errorf("DAE min/max time %.4g vs CAE@fmax %.4g: >10%% degradation", daeMinMax.Time, base.Time)
	}
	// And it must save energy (access phase at fmin + fewer execute stalls).
	if daeMinMax.Energy >= base.Energy {
		t.Errorf("DAE energy %.4g should be below CAE@fmax %.4g", daeMinMax.Energy, base.Energy)
	}
	if daeMinMax.EDP >= base.EDP {
		t.Errorf("DAE EDP %.4g should beat CAE@fmax %.4g", daeMinMax.EDP, base.EDP)
	}
}

func TestOptimalEDPBeatsOrMatchesMinMax(t *testing.T) {
	w, _ := buildStream(t, 8192, 512)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	minmax := Evaluate(tr, m, PolicyMinMax)
	opt := Evaluate(tr, m, PolicyOptimalEDP)
	if opt.EDP > minmax.EDP*1.02 {
		t.Errorf("optimal EDP %.4g should not lose to min/max %.4g", opt.EDP, minmax.EDP)
	}
}

func TestTransitionLatencyCost(t *testing.T) {
	w, _ := buildStream(t, 8192, 256)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine() // 500 ns
	withLat := Evaluate(tr, m, PolicyMinMax)
	m.DVFS = dvfs.Ideal()
	noLat := Evaluate(tr, m, PolicyMinMax)
	if withLat.Time <= noLat.Time {
		t.Errorf("500ns transitions should cost time: %.6g vs %.6g", withLat.Time, noLat.Time)
	}
	if withLat.Transitions == 0 || withLat.TransitionTime == 0 {
		t.Error("min/max policy must record transitions")
	}
	if noLat.TransitionTime != 0 {
		t.Error("ideal transitions must cost no time")
	}
}

func TestFixedPolicyNoTransitions(t *testing.T) {
	w, _ := buildStream(t, 4096, 256)
	cfg := DefaultTraceConfig()
	cfg.Decoupled = false
	tr, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	res := Evaluate(tr, m, PolicyFixed)
	if res.Transitions != 0 {
		t.Errorf("fixed policy made %d transitions", res.Transitions)
	}
	if res.AccessTime != 0 {
		t.Error("coupled trace should have no access time")
	}
	if res.Tasks != 16 {
		t.Errorf("tasks = %d, want 16", res.Tasks)
	}
}

func TestMetricsAccounting(t *testing.T) {
	w, _ := buildStream(t, 4096, 256)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	res := Evaluate(tr, m, PolicyMinMax)
	if res.Time <= 0 || res.Energy <= 0 || res.EDP <= 0 {
		t.Fatalf("non-positive metrics: %s", res)
	}
	if math.Abs(res.EDP-res.Time*res.Energy) > 1e-12*res.EDP {
		t.Error("EDP != T·E")
	}
	if res.TAFraction() <= 0 || res.TAFraction() >= 1 {
		t.Errorf("TA%% = %g, want in (0,1)", res.TAFraction())
	}
	if res.MeanAccessSeconds() <= 0 {
		t.Error("mean access time should be positive")
	}
	// Energy components must sum to the total.
	sum := res.AccessEnergy + res.ExecuteEnergy + res.OtherEnergy
	if math.Abs(sum-res.Energy) > 1e-9*res.Energy {
		t.Errorf("energy components %.6g != total %.6g", sum, res.Energy)
	}
}

func TestBarrierIdleAccounting(t *testing.T) {
	// 5 equal tasks on 4 cores: one core runs two, three cores idle at the
	// barrier.
	w, _ := buildStream(t, 5*256, 256)
	cfg := DefaultTraceConfig()
	tr, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(tr, DefaultMachine(), PolicyMinMax)
	if res.IdleTime <= 0 {
		t.Error("imbalanced batch should produce idle time")
	}
}

func TestOnlinePolicyNearOptimal(t *testing.T) {
	// The online predictor (previous instance of the same task type) must
	// land within a few percent of the offline-profiled optimum on a
	// homogeneous task stream, and beat fixed-fmax on EDP.
	w, _ := buildStream(t, 16384, 512)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	opt := Evaluate(tr, m, PolicyOptimalEDP)
	online := Evaluate(tr, m, PolicyOnline)
	fixed := Evaluate(tr, m, PolicyFixed)
	if online.EDP > opt.EDP*1.05 {
		t.Errorf("online EDP %.4g should be within 5%% of optimal %.4g", online.EDP, opt.EDP)
	}
	if online.EDP >= fixed.EDP {
		t.Errorf("online EDP %.4g should beat fixed-fmax %.4g", online.EDP, fixed.EDP)
	}
}

func TestSuggestGranularity(t *testing.T) {
	hier := mem.EvalHierarchy()
	// triad touches 3 arrays × 8 bytes per iteration.
	n := SuggestGranularity(24, hier)
	want := (hier.L1.SizeBytes + hier.L2.SizeBytes) / 24
	if n != want {
		t.Errorf("granularity = %d, want %d", n, want)
	}
	if SuggestGranularity(0, hier) != 1 || SuggestGranularity(1<<30, hier) != 1 {
		t.Error("degenerate inputs should clamp to 1")
	}
	// The suggestion should sit in the EDP sweet spot found by the
	// granularity ablation (hundreds to a few thousand elements).
	if n < 256 || n > 16384 {
		t.Errorf("suggested granularity %d outside the plausible band", n)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	w, _ := buildStream(t, 4096, 256)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	for _, pol := range []FreqPolicy{PolicyFixed, PolicyMinMax, PolicyOptimalEDP} {
		a := Evaluate(tr, m, pol)
		b := Evaluate(tr2, m, pol)
		if a != b {
			t.Errorf("policy %d: metrics differ after round trip:\n%+v\n%+v", pol, a, b)
		}
	}
	// Corrupted inputs are rejected.
	if _, err := LoadTrace(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := LoadTrace(bytes.NewBufferString(`{"version":99}`)); err == nil {
		t.Error("unknown version should fail")
	}
	if _, err := LoadTrace(bytes.NewBufferString(`{"version":1,"cores":0}`)); err == nil {
		t.Error("invalid core count should fail")
	}
}

func TestRunErrorPaths(t *testing.T) {
	w, _ := buildStream(t, 1024, 256)
	cfg := DefaultTraceConfig()
	cfg.Cores = 0
	if _, err := Run(w, cfg); err == nil {
		t.Error("zero cores must error")
	}
	w.Batches[0][0].Name = "missing"
	if _, err := Run(w, DefaultTraceConfig()); err == nil {
		t.Error("unknown task name must error")
	}
	w2, _ := buildStream(t, 1024, 256)
	w2.Batches[0][0].Args = w2.Batches[0][0].Args[:2]
	if _, err := Run(w2, DefaultTraceConfig()); err == nil {
		t.Error("wrong arity must error")
	}
}

func TestLeastLoadedPlacementBalancesImbalance(t *testing.T) {
	// One batch with chunks of very different sizes: round robin piles the
	// big chunks onto the same cores; least-loaded spreads them.
	build := func() *Workload {
		opts := dae.Defaults()
		opts.HullTest = false
		w, _, err := BuildWorkload("imb", streamSrc, opts)
		if err != nil {
			t.Fatal(err)
		}
		h := interp.NewHeap()
		const total = 32768
		a := h.AllocFloat("A", total)
		b := h.AllocFloat("B", total)
		c := h.AllocFloat("C", total)
		// Huge tasks at positions 0, 1, 4, 5: round robin stacks two huge
		// tasks each onto cores 0 and 1, while least-loaded spreads them
		// across all four cores.
		sizes := []int{7168, 7168, 512, 512, 7168, 7168, 512, 512, 512, 512, 512, 512}
		lo := 0
		var batch []Task
		for _, sz := range sizes {
			batch = append(batch, Task{Name: "triad", Args: []interp.Value{
				interp.Ptr(a), interp.Ptr(b), interp.Ptr(c),
				interp.Int(total), interp.Int(int64(lo)), interp.Int(int64(lo + sz)),
			}})
			lo += sz
		}
		w.Batches = [][]Task{batch}
		return w
	}

	m := DefaultMachine()
	run := func(p Placement) float64 {
		cfg := DefaultTraceConfig()
		cfg.Decoupled = false
		cfg.Place = p
		tr, err := Run(build(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Evaluate(tr, m, PolicyFixed).Time
	}
	rr := run(PlaceRoundRobin)
	ll := run(PlaceLeastLoaded)
	if ll >= rr {
		t.Errorf("least-loaded makespan %.4g should beat round robin %.4g on imbalanced batches", ll, rr)
	}
}
