package rt

import (
	"fmt"

	"dae/internal/analysis"
)

// BatchInstances adapts one batch of a workload into the race detector's
// task-instance form: integer arguments become the affine instantiation
// environment, array arguments are identified by their heap segment so that
// two invocations conflict only when they share an allocation.
func BatchInstances(w *Workload, batchIdx int) []analysis.TaskInstance {
	batch := w.Batches[batchIdx]
	insts := make([]analysis.TaskInstance, 0, len(batch))
	for ti, task := range batch {
		fn := w.Module.Func(task.Name)
		inst := analysis.TaskInstance{
			Label:  fmt.Sprintf("%s#%d.%d", task.Name, batchIdx, ti),
			Fn:     fn,
			Ints:   make(map[string]int64),
			Arrays: make(map[string]analysis.ArrayID),
		}
		if fn != nil {
			for i, p := range fn.Params {
				if i >= len(task.Args) {
					break
				}
				switch {
				case p.Typ.IsInt() && task.Args[i].IsInt():
					inst.Ints[p.Nam] = task.Args[i].Int64()
				case p.Typ.IsPtr():
					if seg := task.Args[i].Segment(); seg != nil {
						inst.Arrays[p.Nam] = seg
					}
				}
			}
		}
		insts = append(insts, inst)
	}
	return insts
}

// CheckRaces runs the polyhedral task-overlap detector over every parallel
// batch of the workload, returning the combined diagnostics. Tasks within a
// batch run concurrently under the scheduler, so any write-write or
// read-write overlap between two instances of the same batch is a race;
// batches are separated by barriers and never compared across.
func CheckRaces(w *Workload) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for bi := range w.Batches {
		diags = append(diags, analysis.CheckBatch(BatchInstances(w, bi))...)
	}
	// A task skipped as non-affine repeats across batches; keep one note.
	return dedupInfo(diags)
}

func dedupInfo(diags []analysis.Diagnostic) []analysis.Diagnostic {
	seen := make(map[analysis.Diagnostic]bool)
	out := diags[:0]
	for _, d := range diags {
		if d.Sev == analysis.SevInfo {
			if seen[d] {
				continue
			}
			seen[d] = true
		}
		out = append(out, d)
	}
	return out
}
