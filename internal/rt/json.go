package rt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// traceJSON is the serialized form of a Trace; all fields of TaskRecord,
// interp.Counts and mem.Stats are exported plain data, so the encoding is a
// faithful snapshot of the frequency-independent profile.
type traceJSON struct {
	Version     int               `json:"version"`
	Workload    string            `json:"workload"`
	Decoupled   bool              `json:"decoupled"`
	Cores       int               `json:"cores"`
	NumBatches  int               `json:"num_batches"`
	Records     []TaskRecord      `json:"records"`
	Quarantined map[string]string `json:"quarantined,omitempty"`
}

// traceVersion 2 added the supervision fields (record Degraded/Failed/
// FaultKind and the trace quarantine set). Version-1 traces decode cleanly —
// the new fields are zero — so both are accepted.
const traceVersion = 2

// SaveTrace writes the trace as JSON. Saved traces let external tooling (or
// later runs) re-evaluate frequency policies without re-simulating.
func SaveTrace(w io.Writer, tr *Trace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceJSON{
		Version:     traceVersion,
		Workload:    tr.Workload,
		Decoupled:   tr.Decoupled,
		Cores:       tr.Cores,
		NumBatches:  tr.NumBatches,
		Records:     tr.Records,
		Quarantined: tr.Quarantined,
	})
}

// EncodeTrace returns the trace in SaveTrace's JSON encoding as a byte
// slice, for embedding in larger documents (e.g. trace-cache entries).
func EncodeTrace(tr *Trace) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveTrace(&buf, tr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTrace parses a trace produced by EncodeTrace (or SaveTrace).
func DecodeTrace(b []byte) (*Trace, error) {
	return LoadTrace(bytes.NewReader(b))
}

// LoadTrace reads a trace saved with SaveTrace.
func LoadTrace(r io.Reader) (*Trace, error) {
	var tj traceJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("rt: decoding trace: %w", err)
	}
	if tj.Version < 1 || tj.Version > traceVersion {
		return nil, fmt.Errorf("rt: unsupported trace version %d", tj.Version)
	}
	if tj.Cores <= 0 {
		return nil, fmt.Errorf("rt: trace has invalid core count %d", tj.Cores)
	}
	for i, rec := range tj.Records {
		if rec.Core < 0 || rec.Core >= tj.Cores {
			return nil, fmt.Errorf("rt: record %d has core %d outside [0,%d)", i, rec.Core, tj.Cores)
		}
		if rec.Batch < 0 || rec.Batch >= tj.NumBatches {
			return nil, fmt.Errorf("rt: record %d has batch %d outside [0,%d)", i, rec.Batch, tj.NumBatches)
		}
	}
	return &Trace{
		Workload:    tj.Workload,
		Decoupled:   tj.Decoupled,
		Cores:       tj.Cores,
		NumBatches:  tj.NumBatches,
		Records:     tj.Records,
		Quarantined: tj.Quarantined,
	}, nil
}
