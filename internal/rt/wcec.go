package rt

import (
	"dae/internal/analysis/wcec"
	"dae/internal/interp"
)

// BoundSet carries the static WCEC bounds of a workload's task phases,
// aligned with the records of a trace of that workload: RunContext appends
// exactly one TaskRecord per task in batch iteration order, and
// WorkloadBounds walks the same order, so Exec[i] and Access[i] bound
// tr.Records[i]'s phases. The shared cost model converts both static
// per-block mixes and observed count vectors into cycles, which is what
// makes the two comparable (the soundness gate in internal/eval) and what
// the rwcec policy divides by the deadline.
type BoundSet struct {
	Model wcec.CostModel
	// Exec bounds each record's execute phase (nil entries carry no bound).
	Exec []*wcec.Bound
	// Access bounds each record's access phase (nil where the task has no
	// access version).
	Access []*wcec.Bound
}

// BoundAt returns the execute-phase bound for record index i, or nil.
func (bs *BoundSet) BoundAt(i int) *wcec.Bound {
	if bs == nil || i < 0 || i >= len(bs.Exec) {
		return nil
	}
	return bs.Exec[i]
}

// taskEnv binds a task's integer parameters to its concrete arguments, the
// environment every static analysis of this repo instantiates bounds at.
func taskEnv(w *Workload, t Task) map[string]int64 {
	fn := w.Module.Func(t.Name)
	if fn == nil {
		return nil
	}
	env := make(map[string]int64)
	for i, p := range fn.Params {
		if i < len(t.Args) && p.Typ.IsInt() && t.Args[i].IsInt() {
			env[p.Nam] = t.Args[i].Int64()
		}
	}
	return env
}

// WorkloadBounds statically bounds every task instance of the workload, in
// the exact order RunContext records them (batch by batch, task by task), so
// the result aligns index-for-index with any trace of w.
func WorkloadBounds(w *Workload, a *wcec.Analyzer) *BoundSet {
	bs := &BoundSet{Model: a.Model}
	for _, batch := range w.Batches {
		for _, t := range batch {
			fn := w.Module.Func(t.Name)
			if fn == nil {
				bs.Exec = append(bs.Exec, nil)
				bs.Access = append(bs.Access, nil)
				continue
			}
			env := taskEnv(w, t)
			bs.Exec = append(bs.Exec, a.BoundFunc(fn, env))
			if acc := w.Access[t.Name]; acc != nil {
				bs.Access = append(bs.Access, a.BoundFunc(acc, env))
			} else {
				bs.Access = append(bs.Access, nil)
			}
		}
	}
	return bs
}

// FillProfileBounds replaces unbounded execute bounds with profile-derived
// ones taken from the trace itself: margin times the largest observed cycle
// count of the same task type. This is the measured-profile fallback of
// Profiling-Assisted DAE — it lets the rwcec policy act on skeleton paths
// the static analysis cannot bound, at the cost of the bound's soundness
// guarantee (the kind is BoundProfile, and the soundness gate excludes such
// bounds from assertion rather than certifying them circularly).
func FillProfileBounds(bs *BoundSet, tr *Trace, margin float64) {
	if bs == nil || tr == nil || len(bs.Exec) != len(tr.Records) {
		return
	}
	if margin < 1 {
		margin = 1
	}
	worst := make(map[string]float64)
	for i := range tr.Records {
		rec := &tr.Records[i]
		if c := bs.Model.Cycles(rec.ExecWork.Counts); c > worst[rec.Name] {
			worst[rec.Name] = c
		}
	}
	for i, b := range bs.Exec {
		if b == nil || b.Kind != wcec.BoundUnbounded {
			continue
		}
		w := worst[tr.Records[i].Name] * margin
		if w <= 0 {
			continue
		}
		bs.Exec[i] = &wcec.Bound{
			Fn:       b.Fn,
			Kind:     wcec.BoundProfile,
			Cycles:   w,
			Segments: []wcec.Segment{{Cycles: w, Iters: 1}},
		}
	}
}

// observedCycles applies the bound set's cost model to an observed count
// vector — the right-hand side of the soundness comparison.
func (bs *BoundSet) ObservedCycles(c interp.Counts) float64 {
	return bs.Model.Cycles(c)
}
