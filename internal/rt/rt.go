// Package rt implements the DAE runtime system of §3: tasks are scheduled
// across simulated cores, the access version of each task runs immediately
// before its execute version on the same core, and the voltage-frequency is
// switched between the phases under a selectable policy (naive min/max f or
// locally-optimal EDP), accounting for the DVFS transition latency.
//
// Execution follows the paper's own evaluation methodology (§3.1): cache
// behaviour and instruction mix are frequency-independent, so a workload is
// *traced* once per program version (coupled or decoupled), recording each
// task phase's work; any frequency policy and transition latency is then
// evaluated analytically from the trace with the interval timing model and
// the calibrated power model. The work-stealing load balancer is modelled by
// deterministic round-robin placement of the equal-granularity tasks of a
// batch (noted in DESIGN.md).
package rt

import (
	"context"
	"errors"
	"fmt"

	"dae/internal/cpu"
	"dae/internal/dae"
	"dae/internal/fault"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/mem"
)

// Task is one schedulable unit: a task function and its arguments.
type Task struct {
	// Name is the task function name in the module.
	Name string
	// Args are the interpreter arguments.
	Args []interp.Value
}

// Workload is a phased task graph: the tasks within a batch are independent
// and run in parallel; batches are separated by barriers.
type Workload struct {
	// Name identifies the benchmark.
	Name string
	// Module holds the compiled task functions (and, after dae.GenerateModule,
	// the access versions).
	Module *ir.Module
	// Access maps a task name to its access-version function (nil entries or
	// missing keys mean the task always runs coupled).
	Access map[string]*ir.Func
	// Batches is the phased task list.
	Batches [][]Task
}

// TaskRecord is the traced work of one executed task.
type TaskRecord struct {
	Name  string
	Core  int
	Batch int
	// HasAccess is set when the decoupled trace ran an access phase.
	HasAccess bool
	// AccessWork is the access phase's work (zero unless HasAccess).
	AccessWork cpu.PhaseWork
	// ExecWork is the execute phase's work.
	ExecWork cpu.PhaseWork
	// Degraded is set when the supervisor dropped (or quarantine skipped)
	// the task's access phase and the task ran coupled; Evaluate pins such
	// tasks at Machine.FixedFreq — they forfeit the DVFS benefit.
	Degraded bool
	// Failed is set when the execute phase itself faulted under DegradeFull:
	// the batch completed, but this task produced no result and ExecWork is
	// zero. The fault is also returned from RunContext — never masked.
	Failed bool
	// FaultKind is the fault class behind Degraded or Failed ("" otherwise).
	FaultKind string
}

// Trace is the frequency-independent record of one workload execution.
type Trace struct {
	Workload  string
	Decoupled bool
	Cores     int
	Records   []TaskRecord
	// NumBatches is the barrier count.
	NumBatches int
	// Quarantined maps each task type whose access variant the supervisor
	// disabled to the fault class that triggered the quarantine. The set only
	// grows during a run (monotone); nil for a fault-free trace.
	Quarantined map[string]string
}

// Degraded reports whether supervision altered the run: any quarantined
// task type or any degraded or failed record.
func (tr *Trace) Degraded() bool {
	if len(tr.Quarantined) > 0 {
		return true
	}
	for i := range tr.Records {
		if tr.Records[i].Degraded || tr.Records[i].Failed {
			return true
		}
	}
	return false
}

// coreTracer adapts interpreter memory events onto a core's hierarchy.
type coreTracer struct{ h *mem.Hierarchy }

func (t *coreTracer) Load(a int64)     { t.h.Access(a, mem.Load) }
func (t *coreTracer) Store(a int64)    { t.h.Access(a, mem.Store) }
func (t *coreTracer) Prefetch(a int64) { t.h.Access(a, mem.Prefetch) }

// Placement selects how a batch's tasks are assigned to cores. Placement
// must be frequency-independent (it is fixed at trace time because caches
// are per-core), so the load balancer works on executed-instruction counts.
type Placement int

// Placement policies.
const (
	// PlaceRoundRobin deals tasks out cyclically — exact for the
	// equal-granularity batches the paper's benchmarks produce.
	PlaceRoundRobin Placement = iota
	// PlaceLeastLoaded assigns each task to the core with the least
	// accumulated work so far, approximating the paper's work stealing for
	// batches with imbalanced tasks.
	PlaceLeastLoaded
)

// DegradeMode selects how much of a faulting workload the runtime
// supervisor salvages. See RunContext.
type DegradeMode int

// Degradation modes, in increasing tolerance.
const (
	// DegradeOff disables supervision: the first task-phase fault aborts the
	// whole trace (the pre-supervisor behaviour).
	DegradeOff DegradeMode = iota
	// DegradeAccess supervises access phases only: an access-phase fault
	// quarantines that task type's access variant for the rest of the
	// workload and the task runs coupled; execute-phase faults still abort.
	// Dropping an access phase is always safe — access phases are store-free
	// by construction (dae purity verification), so they have no effect the
	// execute phase depends on.
	DegradeAccess
	// DegradeFull additionally contains execute-phase faults to task
	// granularity: the task is marked Failed, the batch completes, and
	// RunContext returns the completed trace together with the joined
	// execute faults. The faults are never masked — callers that treat a
	// non-nil error as failure still see one.
	DegradeFull
)

// String returns the CLI spelling of the mode.
func (d DegradeMode) String() string {
	switch d {
	case DegradeAccess:
		return "access"
	case DegradeFull:
		return "full"
	}
	return "off"
}

// ParseDegradeMode parses the CLI spelling ("off", "access", "full").
func ParseDegradeMode(s string) (DegradeMode, error) {
	switch s {
	case "off":
		return DegradeOff, nil
	case "access":
		return DegradeAccess, nil
	case "full":
		return DegradeFull, nil
	}
	return DegradeOff, fmt.Errorf("rt: unknown degrade mode %q (want off, access, or full)", s)
}

// TraceConfig controls workload tracing.
type TraceConfig struct {
	// Cores is the number of simulated cores (the paper evaluates 4).
	Cores int
	// Hierarchy configures the caches.
	Hierarchy mem.HierarchyConfig
	// Decoupled runs access phases before execute phases where available.
	Decoupled bool
	// Place selects the load balancer (default round robin).
	Place Placement
	// MaxSteps, when positive, is the per-task-phase interpreter step (fuel)
	// budget: a phase that executes more operations fails the run with a
	// fault.ErrStepBudget error instead of hanging the trace.
	MaxSteps int64
	// Degrade selects the runtime supervisor's tolerance (default DegradeOff).
	Degrade DegradeMode
	// PhaseHook, when non-nil, is consulted immediately before each task
	// phase; a non-nil return faults the phase as if execution had failed,
	// and a panic is recovered like a real crash. It exists for fault
	// injection and is deliberately excluded from Fingerprint — hooks must
	// not change healthy traces.
	PhaseHook func(task string, access bool) error
	// Engine selects the interpreter execution engine (bytecode default,
	// tree oracle). Excluded from Fingerprint: the engines are required to
	// produce byte-identical traces, so cached traces are shared across them
	// (and the differential tests in internal/eval enforce the requirement).
	Engine interp.Engine
	// OpStats, when non-nil, accumulates the dynamic op/op-pair histogram of
	// the run. Recording requires the tree engine (the histogram measures
	// the unfused op stream). Excluded from Fingerprint: an observer, it
	// cannot change traces.
	OpStats *interp.OpStats
}

// DefaultTraceConfig returns the quad-core evaluation setup with the
// downscaled cache hierarchy (see mem.EvalHierarchy).
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{Cores: 4, Hierarchy: mem.EvalHierarchy(), Decoupled: true}
}

// Fingerprint returns a canonical content key covering every field that
// influences a trace. Two configs with equal fingerprints produce identical
// traces for the same workload, so the string is usable as a cache key.
func (c TraceConfig) Fingerprint() string {
	h := func(cc mem.Config) string {
		return fmt.Sprintf("%d/%d/%d", cc.SizeBytes, cc.LineBytes, cc.Assoc)
	}
	return fmt.Sprintf("cores=%d;l1=%s;l2=%s;l3=%s;dec=%t;place=%d;steps=%d;deg=%d",
		c.Cores, h(c.Hierarchy.L1), h(c.Hierarchy.L2), h(c.Hierarchy.L3), c.Decoupled, c.Place, c.MaxSteps, c.Degrade)
}

// Run traces the workload: every task executes for real through the
// interpreter against its core's cache hierarchy, with the access phase (if
// any, and if cfg.Decoupled) immediately preceding the execute phase on the
// same core. It returns the per-task work records.
func Run(w *Workload, cfg TraceConfig) (*Trace, error) {
	return RunContext(context.Background(), w, cfg)
}

// RunContext is Run under a cancellation context: the context is polled
// between tasks and, inside the interpreter, every few thousand executed
// operations, so a runaway task aborts the trace with a fault.KindTimeout
// error shortly after ctx expires. A panic while tracing (a compiler or
// runtime bug surfaced by an untrusted input) is recovered into a
// fault.ErrPanic error rather than crashing the process.
//
// With cfg.Degrade above DegradeOff, RunContext supervises task phases
// instead of aborting on the first fault: a faulting access phase is
// discarded (access phases are store-free, so the simulated heap is
// untouched), the task type's access variant is quarantined for the rest of
// the workload, and the task — plus every later instance of its type — runs
// coupled with its record marked Degraded. Under DegradeFull a faulting
// execute phase marks only that task Failed and the batch completes, but the
// fault is still returned (joined, alongside the completed trace) so it can
// never be silently swallowed. Real cancellation always aborts.
func RunContext(ctx context.Context, w *Workload, cfg TraceConfig) (tr *Trace, err error) {
	defer fault.Recover(&err, "trace-run")
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("rt: need at least one core")
	}
	prog := interp.NewProgram(w.Module)
	l3 := mem.NewCache(cfg.Hierarchy.L3)

	type core struct {
		hier *mem.Hierarchy
		env  *interp.Env
		tr   *coreTracer
		// prep memoizes engine-bound prepared handles per task function, so
		// the per-task dispatch inside a batch carries no map lookup or
		// compile check (batch-of-tasks amortization). Invalidated whenever
		// the env is rebuilt.
		prep map[*ir.Func]*interp.Prepared
	}
	newEnv := func(ct *coreTracer) *interp.Env {
		env := interp.NewEnv(prog, ct)
		env.SetContext(ctx)
		env.SetMaxSteps(cfg.MaxSteps)
		env.SetEngine(cfg.Engine)
		// Fused cache probe: the bytecode VM feeds the hierarchy directly
		// from its memory instructions; the tree engine keeps using the
		// coreTracer adapter over the same hierarchy (identical events).
		env.SetHierarchy(ct.h)
		env.SetOpStats(cfg.OpStats)
		return env
	}
	rebuild := func(c *core) {
		c.env = newEnv(c.tr)
		c.prep = make(map[*ir.Func]*interp.Prepared)
	}
	cores := make([]*core, cfg.Cores)
	for i := range cores {
		h := mem.NewHierarchy(cfg.Hierarchy, l3)
		ct := &coreTracer{h: h}
		cores[i] = &core{hier: h, env: newEnv(ct), tr: ct, prep: make(map[*ir.Func]*interp.Prepared)}
	}

	tr = &Trace{Workload: w.Name, Decoupled: cfg.Decoupled, Cores: cfg.Cores, NumBatches: len(w.Batches)}

	// runPhase consults the injection hook, then interprets fn on c. Panics
	// are recovered here (not just at the trace boundary) so the supervisor
	// can act on a crashing phase like on any other fault.
	runPhase := func(c *core, task string, fn *ir.Func, args []interp.Value, access bool) (w cpu.PhaseWork, err error) {
		defer fault.Recover(&err, "task-phase")
		if cfg.PhaseHook != nil {
			if herr := cfg.PhaseHook(task, access); herr != nil {
				return cpu.PhaseWork{}, herr
			}
		}
		prep, ok := c.prep[fn]
		if !ok {
			var perr error
			prep, perr = c.env.Prepare(fn)
			if perr != nil {
				return cpu.PhaseWork{}, perr
			}
			c.prep[fn] = prep
		}
		c.env.ResetCounts()
		c.hier.ResetStats()
		if _, cerr := prep.Call(args...); cerr != nil {
			return cpu.PhaseWork{}, cerr
		}
		return cpu.PhaseWork{Counts: c.env.Counts(), Mem: c.hier.Stats}, nil
	}

	// execFaults accumulates contained execute-phase faults (DegradeFull).
	var execFaults []error

	// load tracks accumulated instruction counts per core within the
	// current batch, for the least-loaded placement policy.
	load := make([]int64, cfg.Cores)
	for bi, batch := range w.Batches {
		for i := range load {
			load[i] = 0
		}
		for ti, task := range batch {
			if err := ctx.Err(); err != nil {
				return nil, fault.Wrap(fault.KindTimeout, err)
			}
			ci := ti % cfg.Cores
			if cfg.Place == PlaceLeastLoaded {
				ci = 0
				for k := 1; k < cfg.Cores; k++ {
					if load[k] < load[ci] {
						ci = k
					}
				}
			}
			c := cores[ci]
			fn := w.Module.Func(task.Name)
			if fn == nil {
				return nil, fmt.Errorf("rt: no task function %q", task.Name)
			}
			rec := TaskRecord{Name: task.Name, Core: ci, Batch: bi}
			if acc := w.Access[task.Name]; cfg.Decoupled && acc != nil {
				if kind, q := tr.Quarantined[task.Name]; q {
					// Access variant already quarantined: run coupled.
					rec.Degraded = true
					rec.FaultKind = kind
				} else {
					work, aerr := runPhase(c, task.Name, acc, task.Args, true)
					switch {
					case aerr == nil:
						rec.HasAccess = true
						rec.AccessWork = work
					case ctx.Err() != nil:
						return nil, fault.Wrap(fault.KindTimeout, ctx.Err())
					case cfg.Degrade == DegradeOff:
						return nil, fmt.Errorf("rt: access phase of %s: %w", task.Name, aerr)
					default:
						// Supervise: the access phase stored nothing (purity-
						// verified), so discard it, quarantine the task type's
						// access variant, and run this task coupled. The
						// interpreter may have unwound mid-call; rebuild the
						// core's env rather than reason about its pools.
						kind := fault.ClassOf(aerr)
						if tr.Quarantined == nil {
							tr.Quarantined = make(map[string]string)
						}
						tr.Quarantined[task.Name] = kind
						rec.Degraded = true
						rec.FaultKind = kind
						rebuild(c)
					}
				}
			}
			work, xerr := runPhase(c, task.Name, fn, task.Args, false)
			switch {
			case xerr == nil:
				rec.ExecWork = work
			case ctx.Err() != nil:
				return nil, fault.Wrap(fault.KindTimeout, ctx.Err())
			case cfg.Degrade != DegradeFull:
				return nil, fmt.Errorf("rt: execute phase of %s: %w", task.Name, xerr)
			default:
				// Contain to task granularity, but never mask: the joined
				// fault is returned together with the completed trace.
				rec.Failed = true
				rec.FaultKind = fault.ClassOf(xerr)
				execFaults = append(execFaults, fmt.Errorf("rt: execute phase of %s: %w", task.Name, xerr))
				rebuild(c)
			}
			load[ci] += rec.AccessWork.Counts.Total() + rec.ExecWork.Counts.Total()
			tr.Records = append(tr.Records, rec)
		}
	}
	if len(execFaults) > 0 {
		return tr, errors.Join(execFaults...)
	}
	return tr, nil
}

// BuildWorkload compiles TaskC source, generates access versions with the
// given options, and wraps everything as a Workload (batches filled by the
// caller).
func BuildWorkload(name, src string, opts dae.Options) (*Workload, map[string]*dae.Result, error) {
	mod, err := lower.Compile(src, name)
	if err != nil {
		return nil, nil, err
	}
	results, err := dae.GenerateModule(mod, opts)
	if err != nil {
		return nil, nil, err
	}
	access := make(map[string]*ir.Func)
	for name, res := range results {
		if res.Access != nil {
			access[name] = res.Access
		}
	}
	return &Workload{Name: name, Module: mod, Access: access}, results, nil
}

// SuggestGranularity returns a task size (in loop iterations) whose working
// set just fits the private cache hierarchy — the §3.1 sizing rule the paper
// leaves to the programmer and §5.2.3 proposes automating. bytesPerIter is
// the number of distinct bytes one iteration touches across all arrays.
func SuggestGranularity(bytesPerIter int, hier mem.HierarchyConfig) int {
	if bytesPerIter <= 0 {
		return 1
	}
	// Target the full private capacity (L1+L2): a modest number of L1
	// misses serviced by the L2 does not hurt compute-boundedness (§3.1).
	target := hier.L1.SizeBytes + hier.L2.SizeBytes
	n := target / bytesPerIter
	if n < 1 {
		return 1
	}
	return n
}
