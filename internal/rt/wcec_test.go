package rt

import (
	"math"
	"reflect"
	"testing"

	"dae/internal/analysis/wcec"
)

func boundsFor(t *testing.T, w *Workload, m Machine) *BoundSet {
	t.Helper()
	return WorkloadBounds(w, wcec.New(wcec.NewCostModel(m.CPU)))
}

func TestWorkloadBoundsAlignAndHold(t *testing.T) {
	w, _ := buildStream(t, 4096, 256)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	bs := boundsFor(t, w, m)
	if len(bs.Exec) != len(tr.Records) || len(bs.Access) != len(tr.Records) {
		t.Fatalf("bounds %d/%d not aligned with %d records", len(bs.Exec), len(bs.Access), len(tr.Records))
	}
	for i, rec := range tr.Records {
		b := bs.Exec[i]
		if b == nil || b.Kind == wcec.BoundUnbounded {
			t.Fatalf("record %d (%s): no finite execute bound", i, rec.Name)
		}
		if obs := bs.ObservedCycles(rec.ExecWork.Counts); b.Cycles < obs {
			t.Errorf("record %d: unsound bound %.0f < observed %.0f", i, b.Cycles, obs)
		}
		if a := bs.Access[i]; a == nil {
			t.Errorf("record %d: missing access bound", i)
		} else if obs := bs.ObservedCycles(rec.AccessWork.Counts); a.Cycles < obs {
			t.Errorf("record %d: unsound access bound %.0f < observed %.0f", i, a.Cycles, obs)
		}
	}
}

func TestRWCECPolicyEvaluates(t *testing.T) {
	w, _ := buildStream(t, 4096, 256)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	bs := boundsFor(t, w, m)

	got := EvaluateWithBounds(tr, m, PolicyRWCEC, bs)
	if got.Tasks != len(tr.Records) {
		t.Fatalf("tasks = %d, want %d", got.Tasks, len(tr.Records))
	}
	if !(got.Time > 0) || !(got.Energy > 0) || math.IsInf(got.EDP, 0) || math.IsNaN(got.EDP) {
		t.Fatalf("degenerate metrics: %+v", got)
	}
	// The policy replay is pure arithmetic over the trace and bounds: two
	// evaluations must agree exactly (the Table 1 reproducibility claim).
	again := EvaluateWithBounds(tr, m, PolicyRWCEC, bs)
	if !reflect.DeepEqual(got, again) {
		t.Errorf("rwcec evaluation not deterministic:\n%+v\n%+v", got, again)
	}
	// The deadline is the worst case at fmax, so actual time can only meet
	// or beat the naive exec-at-fmax policy's on the time axis after adding
	// slack — never undercut it (you cannot run faster than fmax).
	minmax := Evaluate(tr, m, PolicyMinMax)
	if got.Time < minmax.Time-1e-12 {
		t.Errorf("rwcec time %.6g below minmax time %.6g", got.Time, minmax.Time)
	}
}

func TestRWCECWithoutBoundsDegeneratesToMinMax(t *testing.T) {
	w, _ := buildStream(t, 2048, 256)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	// No bounds: access at fmin, execute at fmax — exactly the naive policy.
	got := EvaluateWithBounds(tr, m, PolicyRWCEC, nil)
	want := Evaluate(tr, m, PolicyMinMax)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rwcec without bounds != minmax:\n%+v\n%+v", got, want)
	}
}

func TestFillProfileBounds(t *testing.T) {
	w, _ := buildStream(t, 1024, 256)
	tr, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	bs := boundsFor(t, w, m)
	// Force one bound unbounded, then fill from the trace profile.
	orig := bs.Exec[1]
	bs.Exec[1] = &wcec.Bound{Fn: orig.Fn, Kind: wcec.BoundUnbounded, Cycles: math.Inf(1)}
	FillProfileBounds(bs, tr, 1.5)
	b := bs.Exec[1]
	if b.Kind != wcec.BoundProfile {
		t.Fatalf("filled kind = %s, want profile", b.Kind)
	}
	if obs := bs.ObservedCycles(tr.Records[1].ExecWork.Counts); b.Cycles < obs {
		t.Errorf("profile bound %.0f below its own observation %.0f", b.Cycles, obs)
	}
	// Finite bounds are left untouched.
	if bs.Exec[0] == nil || bs.Exec[0].Kind == wcec.BoundProfile {
		t.Errorf("finite bound rewritten: %+v", bs.Exec[0])
	}
}
