package rt

import (
	"testing"

	"dae/internal/interp"
)

// BenchmarkTraceRun drives the full collection pipeline — access and execute
// phases, per-core cache hierarchies, schedule assembly — over the streaming
// workload, once per execution engine. The kernel is idempotent, so one
// built workload is reused across iterations and the figure isolates Run
// itself (task dispatch plus simulation) from compilation.
func BenchmarkTraceRun(b *testing.B) {
	for _, eng := range []interp.Engine{interp.EngineBytecode, interp.EngineTree} {
		b.Run(eng.String(), func(b *testing.B) {
			w, _ := buildStream(b, 4096, 256)
			cfg := DefaultTraceConfig()
			cfg.Engine = eng
			if _, err := Run(w, cfg); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(w, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
