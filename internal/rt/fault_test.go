package rt

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dae/internal/dae"
	"dae/internal/fault"
	"dae/internal/interp"
)

// buildLooper compiles a workload whose single task never terminates.
func buildLooper(t *testing.T) *Workload {
	t.Helper()
	w, _, err := BuildWorkload("looper", `
task spin(int n) {
	int i = 0;
	while (i < n || 1 == 1) {
		i = i + 1;
	}
}`, dae.Defaults())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	w.Batches = [][]Task{{{Name: "spin", Args: []interp.Value{interp.Int(1)}}}}
	return w
}

// TestRunStepBudget: an infinite-loop task under a step budget fails the
// trace with fault.ErrStepBudget — naming function and instruction —
// instead of hanging forever.
func TestRunStepBudget(t *testing.T) {
	w := buildLooper(t)
	cfg := DefaultTraceConfig()
	cfg.MaxSteps = 50_000
	done := make(chan error, 1)
	go func() {
		_, err := Run(w, cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, fault.ErrStepBudget) {
			t.Fatalf("want ErrStepBudget, got %v", err)
		}
		// The generated access version loops like the task, so whichever
		// phase runs first exhausts the budget.
		var fe *fault.Error
		if !errors.As(err, &fe) || !strings.HasPrefix(fe.Func, "spin") || fe.Pos == "" {
			t.Errorf("fault missing function/position: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Run hung despite MaxSteps")
	}
}

// TestRunContextTimeout: a context deadline aborts the trace mid-execution.
func TestRunContextTimeout(t *testing.T) {
	w := buildLooper(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, w, DefaultTraceConfig())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, fault.ErrTimeout) {
			t.Fatalf("want ErrTimeout, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("RunContext ignored its deadline")
	}
}

// TestRunBudgetedTraceIdentical: a budget large enough for the workload
// leaves the trace byte-identical to an unbudgeted run (the fingerprint
// differs, so caches key them separately, but the records must not).
func TestRunBudgetedTraceIdentical(t *testing.T) {
	w, _ := buildStream(t, 1<<12, 1<<10)
	plain, err := Run(w, DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := buildStream(t, 1<<12, 1<<10)
	cfg := DefaultTraceConfig()
	cfg.MaxSteps = 1 << 40
	budgeted, err := RunContext(context.Background(), w2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Records) != len(budgeted.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(plain.Records), len(budgeted.Records))
	}
	for i := range plain.Records {
		if plain.Records[i] != budgeted.Records[i] {
			t.Fatalf("record %d differs under budget:\n%+v\n%+v", i, plain.Records[i], budgeted.Records[i])
		}
	}
}

// TestFingerprintCoversMaxSteps: budgets participate in the cache key.
func TestFingerprintCoversMaxSteps(t *testing.T) {
	a := DefaultTraceConfig()
	b := DefaultTraceConfig()
	b.MaxSteps = 1000
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprints identical despite different MaxSteps")
	}
}
