package rt

import (
	"fmt"

	"dae/internal/cpu"
	"dae/internal/dvfs"
	"dae/internal/power"
)

// FreqPolicy selects the frequency for each task phase.
type FreqPolicy int

// Frequency policies (§3.1).
const (
	// PolicyFixed runs every phase at Machine.FixedFreq.
	PolicyFixed FreqPolicy = iota
	// PolicyMinMax runs access phases at fmin and execute phases at fmax
	// (the naive policy).
	PolicyMinMax
	// PolicyOptimalEDP picks, per phase, the level minimizing the phase's
	// local T²·P (the paper's exhaustive offline-profiled optimum).
	PolicyOptimalEDP
	// PolicyMinFixed runs access phases at fmin and execute phases at
	// Machine.FixedFreq — the configuration swept in the paper's Figure 4
	// profiles ("the access phase is executed at fmin, while the execute
	// phase is varied from fmin to fmax").
	PolicyMinFixed
	// PolicyOnline predicts each phase's frequency from the previous
	// execution of the same task type and phase kind — the runtime
	// counter-based selection the paper points to ([11], [25]) as the
	// practical substitute for its offline-profiled optimum. The first
	// instance of a task type runs at fmax.
	PolicyOnline
)

// Machine bundles the models a policy evaluation needs.
type Machine struct {
	CPU   cpu.Params
	DVFS  dvfs.Table
	Power power.Model
	// FixedFreq is the level used by PolicyFixed (GHz).
	FixedFreq float64
}

// DefaultMachine returns the paper's evaluation machine with 500 ns
// transitions, fixed frequency defaulting to fmax.
func DefaultMachine() Machine {
	t := dvfs.Default()
	return Machine{CPU: cpu.DefaultParams(), DVFS: t, Power: power.Default(), FixedFreq: t.Fmax().Freq}
}

// Metrics is the outcome of evaluating a trace under a policy.
type Metrics struct {
	// Time is the wall-clock makespan in seconds.
	Time float64
	// Energy is the total energy in joules (cores + uncore).
	Energy float64
	// EDP = Time · Energy.
	EDP float64

	// Aggregate per-phase accounting (summed over cores).
	AccessTime     float64
	ExecuteTime    float64
	TransitionTime float64
	IdleTime       float64
	AccessEnergy   float64
	ExecuteEnergy  float64
	OtherEnergy    float64 // transitions + idle + uncore

	// Tasks is the number of task executions.
	Tasks int
	// Transitions is the number of DVFS switches.
	Transitions int
	// DegradedTasks counts tasks that ran coupled under supervision
	// (quarantined access variant); they are pinned at Machine.FixedFreq and
	// contribute no access time, so they forfeit the DVFS benefit — TA% and
	// EDP reflect that.
	DegradedTasks int
	// FailedTasks counts tasks whose execute phase faulted under
	// DegradeFull; they contribute no time or energy at all.
	FailedTasks int
}

// TAFraction returns the fraction of busy time spent in access phases
// (Table 1's TA%).
func (m Metrics) TAFraction() float64 {
	busy := m.AccessTime + m.ExecuteTime
	if busy == 0 {
		return 0
	}
	return m.AccessTime / busy
}

// MeanAccessSeconds returns the average access-phase duration (Table 1's
// TA in µs when multiplied by 1e6).
func (m Metrics) MeanAccessSeconds() float64 {
	if m.Tasks == 0 {
		return 0
	}
	return m.AccessTime / float64(m.Tasks)
}

// phasePlan is the chosen operating point of one phase.
type phasePlan struct {
	level dvfs.Level
	time  float64
	ipc   float64
}

// planPhase picks the operating point for a phase under the policy.
func planPhase(m Machine, w cpu.PhaseWork, isAccess bool, pol FreqPolicy) phasePlan {
	switch pol {
	case PolicyMinMax:
		l := m.DVFS.Fmax()
		if isAccess {
			l = m.DVFS.Fmin()
		}
		return plan(m, w, l)
	case PolicyMinFixed:
		if isAccess {
			return plan(m, w, m.DVFS.Fmin())
		}
		l, err := m.DVFS.ByFreq(m.FixedFreq)
		if err != nil {
			l = m.DVFS.Fmax()
		}
		return plan(m, w, l)
	case PolicyOptimalEDP:
		return plan(m, w, bestLevelFor(m, w))
	default:
		l, err := m.DVFS.ByFreq(m.FixedFreq)
		if err != nil {
			l = m.DVFS.Fmax()
		}
		return plan(m, w, l)
	}
}

func plan(m Machine, w cpu.PhaseWork, l dvfs.Level) phasePlan {
	return phasePlan{level: l, time: m.CPU.Time(w, l.Freq), ipc: m.CPU.IPC(w, l.Freq)}
}

// bestLevelFor returns the level minimizing the local EDP of the given work.
func bestLevelFor(m Machine, w cpu.PhaseWork) dvfs.Level {
	best := m.DVFS.Levels[0]
	bestEDP := localEDP(m, plan(m, w, best))
	for _, l := range m.DVFS.Levels[1:] {
		if e := localEDP(m, plan(m, w, l)); e < bestEDP {
			best, bestEDP = l, e
		}
	}
	return best
}

// localEDP is the per-phase objective of the optimal policy: T²·P with the
// core's power plus its share of the uncore.
func localEDP(m Machine, p phasePlan) float64 {
	pw := m.Power.CorePower(p.ipc, p.level) + m.Power.UncoreStatic/4
	return p.time * p.time * pw
}

// Evaluate replays a trace under a frequency policy, charging phase times,
// DVFS transition latencies (static-only energy, §6.1), and barrier idle
// time (static energy at the core's current level).
func Evaluate(tr *Trace, m Machine, pol FreqPolicy) Metrics {
	type coreState struct {
		clock  float64
		energy float64
		level  dvfs.Level
	}
	cores := make([]coreState, tr.Cores)
	start := m.DVFS.Fmax()
	if pol == PolicyFixed {
		if l, err := m.DVFS.ByFreq(m.FixedFreq); err == nil {
			start = l
		}
	}
	for i := range cores {
		cores[i].level = start
	}

	var out Metrics

	switchTo := func(c *coreState, l dvfs.Level) {
		if c.level == l {
			return
		}
		lat := m.DVFS.TransitionLatency
		if lat > 0 {
			e := power.Energy(lat, m.Power.IdleCorePower(c.level))
			c.clock += lat
			c.energy += e
			out.TransitionTime += lat
			out.OtherEnergy += e
		}
		c.level = l
		out.Transitions++
	}

	runPhase := func(c *coreState, p phasePlan, isAccess bool) {
		e := power.Energy(p.time, m.Power.CorePower(p.ipc, p.level))
		c.clock += p.time
		c.energy += e
		if isAccess {
			out.AccessTime += p.time
			out.AccessEnergy += e
		} else {
			out.ExecuteTime += p.time
			out.ExecuteEnergy += e
		}
	}

	// Per-(task type, phase kind) history for the online predictor.
	type histKey struct {
		name   string
		access bool
	}
	hist := make(map[histKey]cpu.PhaseWork)
	planOnline := func(name string, w cpu.PhaseWork, isAccess bool) phasePlan {
		k := histKey{name: name, access: isAccess}
		level := m.DVFS.Fmax()
		if prev, ok := hist[k]; ok {
			level = bestLevelFor(m, prev)
		}
		hist[k] = w
		return plan(m, w, level)
	}

	// Degraded tasks forfeit policy choice: they are pinned at the fixed
	// (DVFS-less baseline) frequency, whatever the policy under evaluation.
	fixed := m.DVFS.Fmax()
	if l, err := m.DVFS.ByFreq(m.FixedFreq); err == nil {
		fixed = l
	}

	// Replay batch by batch.
	ri := 0
	for b := 0; b < tr.NumBatches; b++ {
		for ri < len(tr.Records) && tr.Records[ri].Batch == b {
			rec := tr.Records[ri]
			c := &cores[rec.Core]
			if rec.Failed {
				// The execute phase faulted: no work to charge, the task
				// produced nothing.
				out.Tasks++
				out.FailedTasks++
				ri++
				continue
			}
			if rec.Degraded {
				p := plan(m, rec.ExecWork, fixed)
				switchTo(c, p.level)
				runPhase(c, p, false)
				out.Tasks++
				out.DegradedTasks++
				ri++
				continue
			}
			if rec.HasAccess {
				var p phasePlan
				if pol == PolicyOnline {
					p = planOnline(rec.Name, rec.AccessWork, true)
				} else {
					p = planPhase(m, rec.AccessWork, true, pol)
				}
				switchTo(c, p.level)
				runPhase(c, p, true)
			}
			var p phasePlan
			if pol == PolicyOnline {
				p = planOnline(rec.Name, rec.ExecWork, false)
			} else {
				p = planPhase(m, rec.ExecWork, false, pol)
			}
			switchTo(c, p.level)
			runPhase(c, p, false)
			out.Tasks++
			ri++
		}
		// Barrier: idle the early cores at their current level.
		var tmax float64
		for i := range cores {
			if cores[i].clock > tmax {
				tmax = cores[i].clock
			}
		}
		for i := range cores {
			idle := tmax - cores[i].clock
			if idle > 0 {
				e := power.Energy(idle, m.Power.IdleCorePower(cores[i].level))
				cores[i].clock = tmax
				cores[i].energy += e
				out.IdleTime += idle
				out.OtherEnergy += e
			}
		}
	}

	for i := range cores {
		if cores[i].clock > out.Time {
			out.Time = cores[i].clock
		}
		out.Energy += cores[i].energy
	}
	uncore := power.Energy(out.Time, m.Power.UncoreStatic)
	out.Energy += uncore
	out.OtherEnergy += uncore
	out.EDP = power.EDP(out.Time, out.Energy)
	return out
}

// String renders metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("T=%.4gs E=%.4gJ EDP=%.4g (acc %.3gs, exe %.3gs, trans %.3gs, idle %.3gs, %d switches)",
		m.Time, m.Energy, m.EDP, m.AccessTime, m.ExecuteTime, m.TransitionTime, m.IdleTime, m.Transitions)
}
