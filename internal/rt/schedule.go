package rt

import (
	"fmt"
	"math"

	"dae/internal/analysis/wcec"
	"dae/internal/cpu"
	"dae/internal/dvfs"
	"dae/internal/power"
)

// FreqPolicy selects the frequency for each task phase.
type FreqPolicy int

// Frequency policies (§3.1).
const (
	// PolicyFixed runs every phase at Machine.FixedFreq.
	PolicyFixed FreqPolicy = iota
	// PolicyMinMax runs access phases at fmin and execute phases at fmax
	// (the naive policy).
	PolicyMinMax
	// PolicyOptimalEDP picks, per phase, the level minimizing the phase's
	// local T²·P (the paper's exhaustive offline-profiled optimum).
	PolicyOptimalEDP
	// PolicyMinFixed runs access phases at fmin and execute phases at
	// Machine.FixedFreq — the configuration swept in the paper's Figure 4
	// profiles ("the access phase is executed at fmin, while the execute
	// phase is varied from fmin to fmax").
	PolicyMinFixed
	// PolicyOnline predicts each phase's frequency from the previous
	// execution of the same task type and phase kind — the runtime
	// counter-based selection the paper points to ([11], [25]) as the
	// practical substitute for its offline-profiled optimum. The first
	// instance of a task type runs at fmax.
	PolicyOnline
	// PolicyRWCEC reselects the execute-phase frequency *inside* the task at
	// its static decision points (type-B branches, type-L loop exits and
	// periodic loop checkpoints): at each point the core runs just fast
	// enough to retire the remaining worst-case cycles (RWCEC) by the
	// deadline — the worst case executed entirely at fmax. Requires a
	// BoundSet (EvaluateWithBounds); tasks without a finite static bound
	// fall back to fmax, and access phases run at fmin as under PolicyMinMax.
	PolicyRWCEC
)

// Machine bundles the models a policy evaluation needs.
type Machine struct {
	CPU   cpu.Params
	DVFS  dvfs.Table
	Power power.Model
	// FixedFreq is the level used by PolicyFixed (GHz).
	FixedFreq float64
}

// DefaultMachine returns the paper's evaluation machine with 500 ns
// transitions, fixed frequency defaulting to fmax.
func DefaultMachine() Machine {
	t := dvfs.Default()
	return Machine{CPU: cpu.DefaultParams(), DVFS: t, Power: power.Default(), FixedFreq: t.Fmax().Freq}
}

// Metrics is the outcome of evaluating a trace under a policy.
type Metrics struct {
	// Time is the wall-clock makespan in seconds.
	Time float64
	// Energy is the total energy in joules (cores + uncore).
	Energy float64
	// EDP = Time · Energy.
	EDP float64

	// Aggregate per-phase accounting (summed over cores).
	AccessTime     float64
	ExecuteTime    float64
	TransitionTime float64
	IdleTime       float64
	AccessEnergy   float64
	ExecuteEnergy  float64
	OtherEnergy    float64 // transitions + idle + uncore

	// Tasks is the number of task executions.
	Tasks int
	// Transitions is the number of DVFS switches.
	Transitions int
	// DegradedTasks counts tasks that ran coupled under supervision
	// (quarantined access variant); they are pinned at Machine.FixedFreq and
	// contribute no access time, so they forfeit the DVFS benefit — TA% and
	// EDP reflect that.
	DegradedTasks int
	// FailedTasks counts tasks whose execute phase faulted under
	// DegradeFull; they contribute no time or energy at all.
	FailedTasks int
}

// TAFraction returns the fraction of busy time spent in access phases
// (Table 1's TA%).
func (m Metrics) TAFraction() float64 {
	busy := m.AccessTime + m.ExecuteTime
	if busy == 0 {
		return 0
	}
	return m.AccessTime / busy
}

// MeanAccessSeconds returns the average access-phase duration (Table 1's
// TA in µs when multiplied by 1e6).
func (m Metrics) MeanAccessSeconds() float64 {
	if m.Tasks == 0 {
		return 0
	}
	return m.AccessTime / float64(m.Tasks)
}

// phasePlan is the chosen operating point of one phase.
type phasePlan struct {
	level dvfs.Level
	time  float64
	ipc   float64
}

// planPhase picks the operating point for a phase under the policy.
func planPhase(m Machine, w cpu.PhaseWork, isAccess bool, pol FreqPolicy) phasePlan {
	switch pol {
	case PolicyMinMax:
		l := m.DVFS.Fmax()
		if isAccess {
			l = m.DVFS.Fmin()
		}
		return plan(m, w, l)
	case PolicyMinFixed:
		if isAccess {
			return plan(m, w, m.DVFS.Fmin())
		}
		l, err := m.DVFS.ByFreq(m.FixedFreq)
		if err != nil {
			l = m.DVFS.Fmax()
		}
		return plan(m, w, l)
	case PolicyOptimalEDP:
		return plan(m, w, bestLevelFor(m, w))
	default:
		l, err := m.DVFS.ByFreq(m.FixedFreq)
		if err != nil {
			l = m.DVFS.Fmax()
		}
		return plan(m, w, l)
	}
}

func plan(m Machine, w cpu.PhaseWork, l dvfs.Level) phasePlan {
	return phasePlan{level: l, time: m.CPU.Time(w, l.Freq), ipc: m.CPU.IPC(w, l.Freq)}
}

// bestLevelFor returns the level minimizing the local EDP of the given work.
func bestLevelFor(m Machine, w cpu.PhaseWork) dvfs.Level {
	best := m.DVFS.Levels[0]
	bestEDP := localEDP(m, plan(m, w, best))
	for _, l := range m.DVFS.Levels[1:] {
		if e := localEDP(m, plan(m, w, l)); e < bestEDP {
			best, bestEDP = l, e
		}
	}
	return best
}

// localEDP is the per-phase objective of the optimal policy: T²·P with the
// core's power plus its share of the uncore.
func localEDP(m Machine, p phasePlan) float64 {
	pw := m.Power.CorePower(p.ipc, p.level) + m.Power.UncoreStatic/4
	return p.time * p.time * pw
}

// Evaluate replays a trace under a frequency policy, charging phase times,
// DVFS transition latencies (static-only energy, §6.1), and barrier idle
// time (static energy at the core's current level). PolicyRWCEC needs the
// static bounds — use EvaluateWithBounds; without them it degenerates to
// running every execute phase at fmax.
func Evaluate(tr *Trace, m Machine, pol FreqPolicy) Metrics {
	return EvaluateWithBounds(tr, m, pol, nil)
}

// EvaluateWithBounds is Evaluate with a static WCEC bound set (aligned with
// tr.Records, see WorkloadBounds) for the intra-task PolicyRWCEC: each
// execute phase is replayed as a sequence of chunks derived from the bound's
// top-level segments (whole loops split into periodic checkpoints), and at
// every chunk boundary the frequency is re-picked as the slowest level that
// still retires the remaining worst-case cycles by the task's deadline —
// the whole worst case executed at fmax. Tasks whose bound is missing,
// unbounded, or already violated by the observed work fall back to a single
// fmax phase. Other policies ignore bs entirely.
func EvaluateWithBounds(tr *Trace, m Machine, pol FreqPolicy, bs *BoundSet) Metrics {
	type coreState struct {
		clock  float64
		energy float64
		level  dvfs.Level
	}
	cores := make([]coreState, tr.Cores)
	start := m.DVFS.Fmax()
	if pol == PolicyFixed {
		if l, err := m.DVFS.ByFreq(m.FixedFreq); err == nil {
			start = l
		}
	}
	for i := range cores {
		cores[i].level = start
	}

	var out Metrics

	switchTo := func(c *coreState, l dvfs.Level) {
		if c.level == l {
			return
		}
		lat := m.DVFS.TransitionLatency
		if lat > 0 {
			e := power.Energy(lat, m.Power.IdleCorePower(c.level))
			c.clock += lat
			c.energy += e
			out.TransitionTime += lat
			out.OtherEnergy += e
		}
		c.level = l
		out.Transitions++
	}

	runPhase := func(c *coreState, p phasePlan, isAccess bool) {
		e := power.Energy(p.time, m.Power.CorePower(p.ipc, p.level))
		c.clock += p.time
		c.energy += e
		if isAccess {
			out.AccessTime += p.time
			out.AccessEnergy += e
		} else {
			out.ExecuteTime += p.time
			out.ExecuteEnergy += e
		}
	}

	// Per-(task type, phase kind) history for the online predictor.
	type histKey struct {
		name   string
		access bool
	}
	hist := make(map[histKey]cpu.PhaseWork)
	planOnline := func(name string, w cpu.PhaseWork, isAccess bool) phasePlan {
		k := histKey{name: name, access: isAccess}
		level := m.DVFS.Fmax()
		if prev, ok := hist[k]; ok {
			level = bestLevelFor(m, prev)
		}
		hist[k] = w
		return plan(m, w, level)
	}

	// Degraded tasks forfeit policy choice: they are pinned at the fixed
	// (DVFS-less baseline) frequency, whatever the policy under evaluation.
	fixed := m.DVFS.Fmax()
	if l, err := m.DVFS.ByFreq(m.FixedFreq); err == nil {
		fixed = l
	}

	// runRWCEC replays one execute phase chunk by chunk, re-picking the
	// level at every chunk boundary from remaining-WCEC over remaining time.
	fmaxL := m.DVFS.Fmax()
	runRWCEC := func(c *coreState, w cpu.PhaseWork, b *wcec.Bound) {
		full := plan(m, w, fmaxL)
		if bs == nil || b == nil || b.Kind == wcec.BoundUnbounded ||
			math.IsInf(b.Cycles, 1) || b.Cycles <= 0 ||
			bs.Model.Cycles(w.Counts) > b.Cycles {
			// No usable bound (or the bound is already violated — unsound
			// input): run the whole phase at fmax, the always-safe choice.
			switchTo(c, fmaxL)
			runPhase(c, full, false)
			return
		}
		W := b.Cycles
		deadline := W / (fmaxL.Freq * 1e9)
		chunks := rwcecChunks(b)
		start := c.clock
		remaining := W
		for _, cw := range chunks {
			left := deadline - (c.clock - start)
			l := fmaxL
			if left > 0 {
				l = m.DVFS.LevelFor(remaining / left / 1e9)
			}
			switchTo(c, l)
			p := plan(m, w, l)
			p.time *= cw / W
			runPhase(c, p, false)
			remaining -= cw
		}
	}

	// Replay batch by batch.
	ri := 0
	for b := 0; b < tr.NumBatches; b++ {
		for ri < len(tr.Records) && tr.Records[ri].Batch == b {
			rec := tr.Records[ri]
			c := &cores[rec.Core]
			if rec.Failed {
				// The execute phase faulted: no work to charge, the task
				// produced nothing.
				out.Tasks++
				out.FailedTasks++
				ri++
				continue
			}
			if rec.Degraded {
				p := plan(m, rec.ExecWork, fixed)
				switchTo(c, p.level)
				runPhase(c, p, false)
				out.Tasks++
				out.DegradedTasks++
				ri++
				continue
			}
			if rec.HasAccess {
				var p phasePlan
				switch pol {
				case PolicyOnline:
					p = planOnline(rec.Name, rec.AccessWork, true)
				case PolicyRWCEC:
					// Access phases are memory-bound by construction: fmin,
					// as under the naive policy.
					p = plan(m, rec.AccessWork, m.DVFS.Fmin())
				default:
					p = planPhase(m, rec.AccessWork, true, pol)
				}
				switchTo(c, p.level)
				runPhase(c, p, true)
			}
			if pol == PolicyRWCEC {
				runRWCEC(c, rec.ExecWork, bs.BoundAt(ri))
				out.Tasks++
				ri++
				continue
			}
			var p phasePlan
			if pol == PolicyOnline {
				p = planOnline(rec.Name, rec.ExecWork, false)
			} else {
				p = planPhase(m, rec.ExecWork, false, pol)
			}
			switchTo(c, p.level)
			runPhase(c, p, false)
			out.Tasks++
			ri++
		}
		// Barrier: idle the early cores at their current level.
		var tmax float64
		for i := range cores {
			if cores[i].clock > tmax {
				tmax = cores[i].clock
			}
		}
		for i := range cores {
			idle := tmax - cores[i].clock
			if idle > 0 {
				e := power.Energy(idle, m.Power.IdleCorePower(cores[i].level))
				cores[i].clock = tmax
				cores[i].energy += e
				out.IdleTime += idle
				out.OtherEnergy += e
			}
		}
	}

	for i := range cores {
		if cores[i].clock > out.Time {
			out.Time = cores[i].clock
		}
		out.Energy += cores[i].energy
	}
	uncore := power.Energy(out.Time, m.Power.UncoreStatic)
	out.Energy += uncore
	out.OtherEnergy += uncore
	out.EDP = power.EDP(out.Time, out.Energy)
	return out
}

// rwcec chunking limits: a loop segment is split into at most 16 periodic
// checkpoints and a whole phase into at most 64 chunks, bounding the number
// of reselection opportunities (and hence DVFS switches) per task.
const (
	rwcecLoopChunks = 16
	rwcecMaxChunks  = 64
)

// rwcecChunks flattens a bound's top-level segments into chunk cycle
// weights. Straight-line segments are one chunk (their boundaries are the
// type-B/type-L decision points); loop segments split into equal periodic
// checkpoints, the intra-loop reselection of the cfg-wcec-sim formulation.
// Zero-cost segments are dropped.
func rwcecChunks(b *wcec.Bound) []float64 {
	var chunks []float64
	for si, s := range b.Segments {
		if len(chunks) >= rwcecMaxChunks {
			// Out of reselection room: fold every remaining segment into one
			// trailing chunk.
			rest := 0.0
			for _, r := range b.Segments[si:] {
				rest += r.Cycles
			}
			if rest > 0 {
				chunks = append(chunks, rest)
			}
			break
		}
		if s.Cycles <= 0 {
			continue
		}
		k := 1
		if s.Loop != nil && s.Iters > 1 {
			k = rwcecLoopChunks
			if int64(k) > s.Iters {
				k = int(s.Iters)
			}
		}
		if room := rwcecMaxChunks - len(chunks); k > room {
			k = room
		}
		for i := 0; i < k; i++ {
			chunks = append(chunks, s.Cycles/float64(k))
		}
	}
	if len(chunks) == 0 {
		chunks = []float64{b.Cycles}
	}
	return chunks
}

// String renders metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("T=%.4gs E=%.4gJ EDP=%.4g (acc %.3gs, exe %.3gs, trans %.3gs, idle %.3gs, %d switches)",
		m.Time, m.Energy, m.EDP, m.AccessTime, m.ExecuteTime, m.TransitionTime, m.IdleTime, m.Transitions)
}
