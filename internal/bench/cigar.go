package bench

import (
	"fmt"

	"dae/internal/interp"
	"dae/internal/rt"
)

// Cigar: a case-injected genetic algorithm in the style of the CIGAR code
// the paper evaluates: fitness evaluation streams every genome through an
// indirect lookup table, crossover gathers genes from selected parents, and
// sparse mutation scatters through an index list. The indirect accesses make
// the hot kernels non-affine and strongly memory-bound.
const cigarSrc = `
task ga_eval(int Pop[P][L], float Lut[K], float Fit[P], int P, int L, int K, int lo, int hi) {
	for (int p = lo; p < hi; p++) {
		float s = 0;
		for (int g = 0; g < L; g++) {
			s += Lut[Pop[p][g] & (K-1)];
		}
		Fit[p] = s;
	}
}

task ga_cross(int Pop[P][L], int Child[P][L], int Sel[P2], int Cut[P], int P, int L, int P2, int lo, int hi) {
	for (int c = lo; c < hi; c++) {
		int pa = Sel[2*c];
		int pb = Sel[2*c+1];
		int cut = Cut[c];
		for (int g = 0; g < L; g++) {
			int va = Pop[pa][g];
			int vb = Pop[pb][g];
			if (g < cut) {
				Child[c][g] = va;
			} else {
				Child[c][g] = vb;
			}
		}
	}
}

task ga_copy(int Pop[P][L], int Child[P][L], int P, int L, int lo, int hi) {
	for (int p = lo; p < hi; p++) {
		for (int g = 0; g < L; g++) {
			Pop[p][g] = Child[p][g];
		}
	}
}

task ga_mut(int Pop[P][L], int MutIdx[M], int MutVal[M], int P, int L, int M, int lo, int hi) {
	for (int m = lo; m < hi; m++) {
		int pos = MutIdx[m];
		int p = pos / L;
		int g = pos % L;
		Pop[p][g] = Pop[p][g] ^ MutVal[m];
	}
}

// Manual access versions: line-granular prefetching of the genome rows; the
// expert skips the fitness lookup table (its accesses are data-dependent and
// mostly cache-resident).
void ga_eval_manual(int Pop[P][L], float Lut[K], float Fit[P], int P, int L, int K, int lo, int hi) {
	for (int p = lo; p < hi; p++) {
		for (int g = 0; g < L; g += 8) {
			prefetch Pop[p][g];
		}
	}
}

void ga_cross_manual(int Pop[P][L], int Child[P][L], int Sel[P2], int Cut[P], int P, int L, int P2, int lo, int hi) {
	for (int c = lo; c < hi; c++) {
		int pa = Sel[2*c];
		int pb = Sel[2*c+1];
		for (int g = 0; g < L; g += 8) {
			prefetch Pop[pa][g];
			prefetch Pop[pb][g];
		}
	}
}

void ga_copy_manual(int Pop[P][L], int Child[P][L], int P, int L, int lo, int hi) {
	for (int p = lo; p < hi; p++) {
		for (int g = 0; g < L; g += 8) {
			prefetch Child[p][g];
		}
	}
}
`

const (
	cigarP     = 256
	cigarL     = 256
	cigarK     = 512 // 4 KiB lookup table: resident in L1 alongside the genome stream
	cigarGens  = 3
	cigarChunk = 8 // individuals per task; 8 rows ≈ 16 KiB fits L1+L2 (§3.1)
	cigarMuts  = 2048
)

func buildCigar(v Variant) (*Built, error) {
	p, l, k := cigarP, cigarL, cigarK
	hints := map[string]int64{
		"P": int64(p), "L": int64(l), "K": int64(k), "P2": int64(2 * p),
		"M": cigarMuts, "lo": 0, "hi": cigarChunk,
	}
	w, results, err := buildCommon("Cigar", cigarSrc, hints, v)
	if err != nil {
		return nil, err
	}

	h := interp.NewHeap()
	pop := h.AllocInt("Pop", p*l)
	child := h.AllocInt("Child", p*l)
	lut := h.AllocFloat("Lut", k)
	fit := h.AllocFloat("Fit", p)

	rng := newLCG(5150)
	for i := range pop.I {
		pop.I[i] = int64(rng.intn(1 << 16))
	}
	for i := range lut.F {
		lut.F[i] = rng.float()
	}

	// Reference state mirrors the simulated arrays; the host-side selection
	// logic is identical for both, so the final populations must agree.
	refPop := append([]int64{}, pop.I...)
	refChild := make([]int64, p*l)
	refFit := make([]float64, p)

	// Host-side deterministic "GA driver": after the eval batch of each
	// generation, tournament selection fills Sel and Cut and the mutation
	// lists; these host arrays are inputs to the next batches. Selection
	// depends only on deterministic rng + fitness ranks, so we precompute
	// per-generation plans against the reference now, and the simulated run
	// must reproduce the same populations (its fitness values are identical).
	type genPlan struct {
		sel    []int64
		cut    []int64
		mutIdx []int64
		mutVal []int64
	}
	plans := make([]genPlan, cigarGens)
	{
		r := newLCG(8086)
		for gen := 0; gen < cigarGens; gen++ {
			// reference eval
			for pi := 0; pi < p; pi++ {
				s := 0.0
				for g := 0; g < l; g++ {
					s += lut.F[refPop[pi*l+g]&int64(k-1)]
				}
				refFit[pi] = s
			}
			pl := genPlan{sel: make([]int64, 2*p), cut: make([]int64, p),
				mutIdx: make([]int64, cigarMuts), mutVal: make([]int64, cigarMuts)}
			for c := 0; c < p; c++ {
				pl.sel[2*c] = int64(tournament(refFit, r))
				pl.sel[2*c+1] = int64(tournament(refFit, r))
				pl.cut[c] = int64(r.intn(l))
			}
			used := map[int]bool{}
			for m := 0; m < cigarMuts; m++ {
				pos := r.intn(p * l)
				for used[pos] {
					pos = r.intn(p * l)
				}
				used[pos] = true
				pl.mutIdx[m] = int64(pos)
				pl.mutVal[m] = int64(r.intn(1 << 16))
			}
			plans[gen] = pl
			// reference crossover+copy+mutation
			for c := 0; c < p; c++ {
				pa, pb := pl.sel[2*c], pl.sel[2*c+1]
				for g := 0; g < l; g++ {
					if int64(g) < pl.cut[c] {
						refChild[c*l+g] = refPop[pa*int64(l)+int64(g)]
					} else {
						refChild[c*l+g] = refPop[pb*int64(l)+int64(g)]
					}
				}
			}
			copy(refPop, refChild)
			for m := 0; m < cigarMuts; m++ {
				refPop[pl.mutIdx[m]] ^= pl.mutVal[m]
			}
		}
	}

	// Build the simulated batches, with host hooks modelled by baking the
	// per-generation plans into the Sel/Cut/Mut arrays through tiny
	// "host" batches (zero-cost writes done between batches via closures is
	// not possible, so plans are staged in per-generation arrays).
	selGen := make([]*interp.Seg, cigarGens)
	cutGen := make([]*interp.Seg, cigarGens)
	mutIdxGen := make([]*interp.Seg, cigarGens)
	mutValGen := make([]*interp.Seg, cigarGens)
	for gen := 0; gen < cigarGens; gen++ {
		selGen[gen] = h.AllocInt(fmt.Sprintf("Sel%d", gen), 2*p)
		cutGen[gen] = h.AllocInt(fmt.Sprintf("Cut%d", gen), p)
		mutIdxGen[gen] = h.AllocInt(fmt.Sprintf("MutIdx%d", gen), cigarMuts)
		mutValGen[gen] = h.AllocInt(fmt.Sprintf("MutVal%d", gen), cigarMuts)
		copy(selGen[gen].I, plans[gen].sel)
		copy(cutGen[gen].I, plans[gen].cut)
		copy(mutIdxGen[gen].I, plans[gen].mutIdx)
		copy(mutValGen[gen].I, plans[gen].mutVal)
	}
	pp := interp.Int(int64(p))
	ll := interp.Int(int64(l))
	for gen := 0; gen < cigarGens; gen++ {
		var evalB, crossB, copyB, mutB []rt.Task
		for lo := 0; lo < p; lo += cigarChunk {
			hi := lo + cigarChunk
			evalB = append(evalB, rt.Task{Name: "ga_eval", Args: []interp.Value{
				interp.Ptr(pop), interp.Ptr(lut), interp.Ptr(fit),
				pp, ll, interp.Int(int64(k)), interp.Int(int64(lo)), interp.Int(int64(hi)),
			}})
			crossB = append(crossB, rt.Task{Name: "ga_cross", Args: []interp.Value{
				interp.Ptr(pop), interp.Ptr(child), interp.Ptr(selGen[gen]), interp.Ptr(cutGen[gen]),
				pp, ll, interp.Int(int64(2 * p)), interp.Int(int64(lo)), interp.Int(int64(hi)),
			}})
			copyB = append(copyB, rt.Task{Name: "ga_copy", Args: []interp.Value{
				interp.Ptr(pop), interp.Ptr(child),
				pp, ll, interp.Int(int64(lo)), interp.Int(int64(hi)),
			}})
		}
		for lo := 0; lo < cigarMuts; lo += cigarMuts / 4 {
			hi := lo + cigarMuts/4
			mutB = append(mutB, rt.Task{Name: "ga_mut", Args: []interp.Value{
				interp.Ptr(pop), interp.Ptr(mutIdxGen[gen]), interp.Ptr(mutValGen[gen]),
				pp, ll, interp.Int(cigarMuts), interp.Int(int64(lo)), interp.Int(int64(hi)),
			}})
		}
		w.Batches = append(w.Batches, evalB, crossB, copyB, mutB)
	}

	verify := func() error {
		for i := range refPop {
			if refPop[i] != pop.I[i] {
				return fmt.Errorf("Cigar population mismatch at %d: got %d, want %d", i, pop.I[i], refPop[i])
			}
		}
		return nil
	}
	return &Built{W: w, Results: results, Heap: h, Verify: verify}, nil
}

// tournament picks the fitter of two deterministic contestants.
func tournament(fit []float64, r *lcg) int {
	a, b := r.intn(len(fit)), r.intn(len(fit))
	if fit[a] >= fit[b] {
		return a
	}
	return b
}
