package bench

import (
	"fmt"
	"math"

	"dae/internal/interp"
	"dae/internal/rt"
)

// Cholesky: blocked right-looking Cholesky factorization A = L·Lᵀ (SPLASH2
// kernel structure), storing L in the lower triangle. Three task types per
// step: diagonal-block factorization (with sqrt), panel triangular solve,
// and trailing symmetric rank-B updates. All tasks are affine loop nests
// (Table 1: 3/3 affine loops).
const cholSrc = `
task chol_diag(float A[N][N], int N, int B, int kk) {
	for (int j = 0; j < B; j++) {
		float d = A[kk+j][kk+j];
		for (int t = 0; t < j; t++) {
			d -= A[kk+j][kk+t] * A[kk+j][kk+t];
		}
		A[kk+j][kk+j] = sqrt(d);
		for (int i = j+1; i < B; i++) {
			float s = A[kk+i][kk+j];
			for (int t = 0; t < j; t++) {
				s -= A[kk+i][kk+t] * A[kk+j][kk+t];
			}
			A[kk+i][kk+j] = s / A[kk+j][kk+j];
		}
	}
}

task chol_panel(float A[N][N], int N, int B, int kk, int ii) {
	for (int c = 0; c < B; c++) {
		for (int r = 0; r < B; r++) {
			float s = A[ii+r][kk+c];
			for (int t = 0; t < c; t++) {
				s -= A[ii+r][kk+t] * A[kk+c][kk+t];
			}
			A[ii+r][kk+c] = s / A[kk+c][kk+c];
		}
	}
}

task chol_update(float A[N][N], int N, int B, int kk, int ii, int jj) {
	for (int r = 0; r < B; r++) {
		for (int c = 0; c < B; c++) {
			float s = A[ii+r][jj+c];
			for (int t = 0; t < B; t++) {
				s -= A[ii+r][kk+t] * A[jj+c][kk+t];
			}
			A[ii+r][jj+c] = s;
		}
	}
}

// Manual access versions with the expert's selective prefetching.
void chol_diag_manual(float A[N][N], int N, int B, int kk) {
	for (int i = 0; i < B; i++) {
		for (int j = 0; j < B; j++) {
			prefetch A[kk+i][kk+j];
		}
	}
}

void chol_panel_manual(float A[N][N], int N, int B, int kk, int ii) {
	for (int i = 0; i < B; i++) {
		for (int j = 0; j < B; j++) {
			prefetch A[kk+i][kk+j];
		}
	}
}

void chol_update_manual(float A[N][N], int N, int B, int kk, int ii, int jj) {
	for (int i = 0; i < B; i++) {
		for (int j = 0; j < B; j++) {
			prefetch A[ii+i][kk+j];
			prefetch A[jj+i][kk+j];
		}
	}
}
`

const (
	cholN = 192
	cholB = 32
)

func buildCholesky(v Variant) (*Built, error) {
	n, b := cholN, cholB
	hints := map[string]int64{"N": int64(n), "B": int64(b), "kk": 0, "ii": int64(b), "jj": int64(b)}
	w, results, err := buildCommon("Cholesky", cholSrc, hints, v)
	if err != nil {
		return nil, err
	}

	h := interp.NewHeap()
	a := h.AllocFloat("A", n*n)
	initSPD(a.F, n)
	ref := make([]float64, n*n)
	copy(ref, a.F)

	ap := interp.Ptr(a)
	nn := interp.Int(int64(n))
	bb := interp.Int(int64(b))
	nb := n / b
	for k := 0; k < nb; k++ {
		kk := interp.Int(int64(k * b))
		w.Batches = append(w.Batches, []rt.Task{{
			Name: "chol_diag", Args: []interp.Value{ap, nn, bb, kk},
		}})
		var panel []rt.Task
		for i := k + 1; i < nb; i++ {
			panel = append(panel, rt.Task{Name: "chol_panel",
				Args: []interp.Value{ap, nn, bb, kk, interp.Int(int64(i * b))}})
		}
		if len(panel) > 0 {
			w.Batches = append(w.Batches, panel)
		}
		var updates []rt.Task
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j <= i; j++ {
				updates = append(updates, rt.Task{Name: "chol_update",
					Args: []interp.Value{ap, nn, bb, kk,
						interp.Int(int64(i * b)), interp.Int(int64(j * b))}})
			}
		}
		if len(updates) > 0 {
			w.Batches = append(w.Batches, updates)
		}
	}

	verify := func() error {
		if err := refCholesky(ref, n); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if !approxEqual(ref[i*n+j], a.F[i*n+j], 1e-6) {
					return fmt.Errorf("Cholesky mismatch at (%d,%d): got %g, want %g",
						i, j, a.F[i*n+j], ref[i*n+j])
				}
			}
		}
		return nil
	}
	return &Built{W: w, Results: results, Heap: h, Verify: verify}, nil
}

// initSPD builds a symmetric positive-definite matrix.
func initSPD(a []float64, n int) {
	rng := newLCG(777)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.float()
			a[i*n+j] = v
			a[j*n+i] = v
		}
		a[i*n+i] += float64(n)
	}
}

// refCholesky is the unblocked reference factorization of the lower triangle.
func refCholesky(a []float64, n int) error {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for t := 0; t < j; t++ {
			d -= a[j*n+t] * a[j*n+t]
		}
		if d <= 0 {
			return fmt.Errorf("reference Cholesky: matrix not SPD at %d", j)
		}
		a[j*n+j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for t := 0; t < j; t++ {
				s -= a[i*n+t] * a[j*n+t]
			}
			a[i*n+j] = s / a[j*n+j]
		}
	}
	return nil
}
