package bench

import (
	"fmt"

	"dae/internal/interp"
	"dae/internal/rt"
)

// CG: conjugate gradient on a 5-point Laplacian in CSR form (the NAS CG
// kernel's role). The sparse matrix-vector product is non-affine (row
// pointers and column gathers are loaded), while the vector updates are
// affine — the intermediate behaviour the paper attributes to CG. Scalars
// (alpha, beta) are computed by the sequential host part of the runtime from
// per-chunk partial dot products.
const cgSrc = `
task cg_spmv(float Q[n], float P[n], float Val[nnz], int Col[nnz], int Row[n1], int n, int nnz, int n1, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		float s = 0;
		for (int j = Row[i]; j < Row[i+1]; j++) {
			s += Val[j] * P[Col[j]];
		}
		Q[i] = s;
	}
}

task cg_dot(float X[n], float Y[n], float Part[nc], int n, int nc, int c, int lo, int hi) {
	float s = 0;
	for (int i = lo; i < hi; i++) {
		s += X[i] * Y[i];
	}
	Part[c] = s;
}

task cg_axpy(float Y[n], float X[n], int n, float a, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		Y[i] = Y[i] + a * X[i];
	}
}

task cg_xpay(float Y[n], float X[n], int n, float b, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		Y[i] = X[i] + b * Y[i];
	}
}

// The expert's manual spmv access version prefetches the CSR streams at line
// granularity but skips the gathered vector entries (selective prefetching).
void cg_spmv_manual(float Q[n], float P[n], float Val[nnz], int Col[nnz], int Row[n1], int n, int nnz, int n1, int lo, int hi) {
	for (int i = lo; i < hi; i += 8) {
		prefetch Row[i];
	}
	for (int j = Row[lo]; j < Row[hi]; j += 8) {
		prefetch Val[j];
		prefetch Col[j];
	}
}

void cg_dot_manual(float X[n], float Y[n], float Part[nc], int n, int nc, int c, int lo, int hi) {
	for (int i = lo; i < hi; i += 8) {
		prefetch X[i];
		prefetch Y[i];
	}
}

void cg_axpy_manual(float Y[n], float X[n], int n, float a, int lo, int hi) {
	for (int i = lo; i < hi; i += 8) {
		prefetch Y[i];
		prefetch X[i];
	}
}

void cg_xpay_manual(float Y[n], float X[n], int n, float b, int lo, int hi) {
	for (int i = lo; i < hi; i += 8) {
		prefetch Y[i];
		prefetch X[i];
	}
}
`

const (
	cgGrid  = 64 // n = cgGrid², 5-point stencil
	cgIters = 5
	cgChunk = 512
)

// cgCSR builds the 5-point Laplacian in CSR.
func cgCSR(g int) (rowptr, col []int64, val []float64) {
	n := g * g
	rowptr = make([]int64, n+1)
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			i := r*g + c
			add := func(j int, v float64) {
				col = append(col, int64(j))
				val = append(val, v)
			}
			add(i, 4)
			if r > 0 {
				add(i-g, -1)
			}
			if r < g-1 {
				add(i+g, -1)
			}
			if c > 0 {
				add(i-1, -1)
			}
			if c < g-1 {
				add(i+1, -1)
			}
			rowptr[i+1] = int64(len(col))
		}
	}
	return rowptr, col, val
}

func buildCG(v Variant) (*Built, error) {
	g := cgGrid
	n := g * g
	rowptr, colIdx, vals := cgCSR(g)
	nnz := len(colIdx)
	nc := (n + cgChunk - 1) / cgChunk

	hints := map[string]int64{
		"n": int64(n), "nnz": int64(nnz), "n1": int64(n + 1), "nc": int64(nc),
		"c": 0, "lo": 0, "hi": cgChunk,
	}
	w, results, err := buildCommon("CG", cgSrc, hints, v)
	if err != nil {
		return nil, err
	}

	h := interp.NewHeap()
	val := h.AllocFloat("Val", nnz)
	col := h.AllocInt("Col", nnz)
	row := h.AllocInt("Row", n+1)
	x := h.AllocFloat("X", n)
	r := h.AllocFloat("R", n)
	p := h.AllocFloat("P", n)
	q := h.AllocFloat("Q", n)
	copy(val.F, vals)
	copy(col.I, colIdx)
	copy(row.I, rowptr)

	rng := newLCG(64)
	bvec := make([]float64, n)
	for i := 0; i < n; i++ {
		bvec[i] = rng.float()*2 - 1
		r.F[i] = bvec[i] // x0 = 0 → r = b
		p.F[i] = bvec[i]
	}

	// The host side of CG: the scalars depend on dot products of the
	// simulated vectors. Since the simulated tasks compute exactly the
	// reference arithmetic, the per-iteration scalars are precomputed
	// against the Go reference and injected as task arguments; Verify then
	// checks the final x vector matches the reference run.
	alphas, betas, refX := refCG(rowptr, colIdx, vals, bvec, cgIters)

	mkRange := func(name string, mk func(lo, hi, c int) rt.Task) []rt.Task {
		var batch []rt.Task
		ci := 0
		for lo := 0; lo < n; lo += cgChunk {
			hi := lo + cgChunk
			if hi > n {
				hi = n
			}
			batch = append(batch, mk(lo, hi, ci))
			ci++
		}
		_ = name
		return batch
	}

	nn := interp.Int(int64(n))
	for it := 0; it < cgIters; it++ {
		// q = A p
		w.Batches = append(w.Batches, mkRange("spmv", func(lo, hi, c int) rt.Task {
			return rt.Task{Name: "cg_spmv", Args: []interp.Value{
				interp.Ptr(q), interp.Ptr(p), interp.Ptr(val), interp.Ptr(col), interp.Ptr(row),
				nn, interp.Int(int64(nnz)), interp.Int(int64(n + 1)),
				interp.Int(int64(lo)), interp.Int(int64(hi)),
			}}
		}))
		// partial dots p·q (feeds alpha on the host side)
		part := h.AllocFloat(fmt.Sprintf("PartPQ%d", it), nc)
		w.Batches = append(w.Batches, mkRange("dot", func(lo, hi, c int) rt.Task {
			return rt.Task{Name: "cg_dot", Args: []interp.Value{
				interp.Ptr(p), interp.Ptr(q), interp.Ptr(part),
				nn, interp.Int(int64(nc)), interp.Int(int64(c)),
				interp.Int(int64(lo)), interp.Int(int64(hi)),
			}}
		}))
		// x += alpha p ; r -= alpha q
		alpha := alphas[it]
		batch := mkRange("axpy-x", func(lo, hi, c int) rt.Task {
			return rt.Task{Name: "cg_axpy", Args: []interp.Value{
				interp.Ptr(x), interp.Ptr(p), nn, interp.Float(alpha),
				interp.Int(int64(lo)), interp.Int(int64(hi)),
			}}
		})
		batch = append(batch, mkRange("axpy-r", func(lo, hi, c int) rt.Task {
			return rt.Task{Name: "cg_axpy", Args: []interp.Value{
				interp.Ptr(r), interp.Ptr(q), nn, interp.Float(-alpha),
				interp.Int(int64(lo)), interp.Int(int64(hi)),
			}}
		})...)
		w.Batches = append(w.Batches, batch)
		// partial dots r·r (feeds beta)
		part2 := h.AllocFloat(fmt.Sprintf("PartRR%d", it), nc)
		w.Batches = append(w.Batches, mkRange("dot-rr", func(lo, hi, c int) rt.Task {
			return rt.Task{Name: "cg_dot", Args: []interp.Value{
				interp.Ptr(r), interp.Ptr(r), interp.Ptr(part2),
				nn, interp.Int(int64(nc)), interp.Int(int64(c)),
				interp.Int(int64(lo)), interp.Int(int64(hi)),
			}}
		}))
		// p = r + beta p
		beta := betas[it]
		w.Batches = append(w.Batches, mkRange("xpay", func(lo, hi, c int) rt.Task {
			return rt.Task{Name: "cg_xpay", Args: []interp.Value{
				interp.Ptr(p), interp.Ptr(r), nn, interp.Float(beta),
				interp.Int(int64(lo)), interp.Int(int64(hi)),
			}}
		}))
	}

	verify := func() error {
		for i := 0; i < n; i++ {
			if !approxEqual(refX[i], x.F[i], 1e-9) {
				return fmt.Errorf("CG x mismatch at %d: got %g, want %g", i, x.F[i], refX[i])
			}
		}
		return nil
	}
	return &Built{W: w, Results: results, Heap: h, Verify: verify}, nil
}

// refCG runs the reference CG and returns per-iteration alpha/beta and the
// final x.
func refCG(rowptr, col []int64, val []float64, b []float64, iters int) (alphas, betas, x []float64) {
	n := len(b)
	x = make([]float64, n)
	r := append([]float64{}, b...)
	p := append([]float64{}, b...)
	q := make([]float64, n)
	rz := dot(r, r)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := rowptr[i]; j < rowptr[i+1]; j++ {
				s += val[j] * p[col[j]]
			}
			q[i] = s
		}
		alpha := rz / dot(p, q)
		alphas = append(alphas, alpha)
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rz2 := dot(r, r)
		beta := rz2 / rz
		rz = rz2
		betas = append(betas, beta)
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
	}
	return alphas, betas, x
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
