package bench

import (
	"testing"

	daepass "dae/internal/dae"
	"dae/internal/rt"
)

// TestRefineAllAppsStaysCorrect applies profile-guided prefetch pruning to
// every benchmark and checks the refined workloads still trace and verify:
// refinement must never change computed results (access phases write
// nothing) and never break the generated IR.
func TestRefineAllAppsStaysCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("refine sweep in short mode")
	}
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			b, err := app.Build(Auto)
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := b.Refine(daepass.DefaultRefine(), 3)
			if err != nil {
				t.Fatalf("refine: %v", err)
			}
			tr, err := rt.Run(b.W, rt.DefaultTraceConfig())
			if err != nil {
				t.Fatalf("trace after refine: %v", err)
			}
			if err := b.Verify(); err != nil {
				t.Fatalf("verify after refine: %v", err)
			}
			met := rt.Evaluate(tr, rt.DefaultMachine(), rt.PolicyOptimalEDP)
			t.Logf("%s: pruned %d prefetch instrs; EDP %.4g", app.Name, pruned, met.EDP)
		})
	}
}
