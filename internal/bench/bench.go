// Package bench reimplements the paper's seven benchmarks as TaskC
// task-based kernels: LU, Cholesky and FFT (SPLASH2), CG (NAS), LBM and
// libquantum (SPEC CPU2006), and CIGAR (case-injected genetic algorithm).
// Each app provides the task sources, a hand-written "Manual DAE" access
// version (the expert-crafted baseline of §6), deterministic input
// generation, the task batch structure, and a pure-Go reference
// implementation used to verify that the simulated execution computes the
// right answer.
package bench

import (
	"fmt"

	"dae/internal/dae"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/rt"
)

// Variant selects whose access phases a build wires up.
type Variant int

// Variants.
const (
	// Auto uses the compiler-generated access versions (the contribution).
	Auto Variant = iota
	// Manual uses the hand-written access tasks (the §6 baseline).
	Manual
)

// Built is one freshly constructed, runnable benchmark instance.
type Built struct {
	W       *rt.Workload
	Results map[string]*dae.Result
	Heap    *interp.Heap
	// Verify checks the computed output against the Go reference after the
	// workload has been traced.
	Verify func() error
}

// Refine applies profile-guided prefetch pruning (dae.RefineAccess, the
// paper's §7 future work) to every task's access version, profiling each
// task type on up to perTask representative instances drawn from the
// workload's batches. It returns the number of pruned static prefetches.
// Call before tracing; access versions write nothing, so profiling leaves
// the benchmark data intact.
func (b *Built) Refine(opts dae.RefineOptions, perTask int) (int, error) {
	argSets := make(map[string][][]interp.Value)
	for _, batch := range b.W.Batches {
		for _, t := range batch {
			if len(argSets[t.Name]) < perTask {
				argSets[t.Name] = append(argSets[t.Name], t.Args)
			}
		}
	}
	total := 0
	for name, res := range b.Results {
		sets := argSets[name]
		if res.Access == nil || len(sets) == 0 {
			continue
		}
		n, err := dae.RefineAccess(res, opts, sets...)
		if err != nil {
			return total, fmt.Errorf("refine %s: %w", name, err)
		}
		total += n
	}
	return total, nil
}

// App is one benchmark.
type App struct {
	// Name is the paper's benchmark name.
	Name string
	// Build constructs a fresh instance (new heap, new data) at the app's
	// default evaluation scale.
	Build func(v Variant) (*Built, error)
}

// Apps returns the seven evaluation benchmarks in the paper's order.
func Apps() []App {
	return []App{
		{Name: "LU", Build: func(v Variant) (*Built, error) { return buildLU(v) }},
		{Name: "Cholesky", Build: func(v Variant) (*Built, error) { return buildCholesky(v) }},
		{Name: "FFT", Build: func(v Variant) (*Built, error) { return buildFFT(v) }},
		{Name: "LBM", Build: func(v Variant) (*Built, error) { return buildLBM(v) }},
		{Name: "LibQ", Build: func(v Variant) (*Built, error) { return buildLibQ(v) }},
		{Name: "Cigar", Build: func(v Variant) (*Built, error) { return buildCigar(v) }},
		{Name: "CG", Build: func(v Variant) (*Built, error) { return buildCG(v) }},
	}
}

// AppByName returns the named app.
func AppByName(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("bench: unknown app %q", name)
}

// OptionsHook, when non-nil, adjusts the access-generation options of every
// subsequent Build call. It exists for the ablation benchmarks (e.g. forcing
// PrefetchStores or disabling CFG simplification on a full app build); the
// evaluation harness leaves it nil.
var OptionsHook func(*dae.Options)

// buildCommon compiles src, generates access versions with hints, and wires
// the chosen variant's access map. Manual access functions are plain void
// functions named "<task>_manual".
func buildCommon(name, src string, hints map[string]int64, v Variant) (*rt.Workload, map[string]*dae.Result, error) {
	opts := dae.Defaults()
	opts.ParamHints = hints
	if OptionsHook != nil {
		OptionsHook(&opts)
	}
	w, results, err := rt.BuildWorkload(name, src, opts)
	if err != nil {
		return nil, nil, err
	}
	if v == Manual {
		access := make(map[string]*ir.Func)
		for _, task := range w.Module.Tasks() {
			if man := w.Module.Func(task.Name + "_manual"); man != nil {
				access[task.Name] = man
			}
		}
		w.Access = access
	}
	return w, results, nil
}

// lcg is a small deterministic generator for benchmark inputs.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 17
}

// float in [0,1)
func (l *lcg) float() float64 { return float64(l.next()%(1<<30)) / float64(1<<30) }

// intn in [0,n)
func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

func approxEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if a > m {
		m = a
	}
	if -a > m {
		m = -a
	}
	if b > m {
		m = b
	}
	if -b > m {
		m = -b
	}
	return d <= tol*m
}
