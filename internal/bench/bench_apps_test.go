package bench

import (
	"testing"

	"dae/internal/dae"
	"dae/internal/rt"
)

func TestAllAppsBuildAndVerifyAuto(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			b, err := app.Build(Auto)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			traceAndVerify(t, b, true)
		})
	}
}

func TestAllAppsBuildAndVerifyManual(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			b, err := app.Build(Manual)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			traceAndVerify(t, b, true)
		})
	}
}

func TestAllAppsBuildAndVerifyCoupled(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			b, err := app.Build(Auto)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			traceAndVerify(t, b, false)
		})
	}
}

// TestStrategyMix checks the Table 1 classification shape: LU and Cholesky
// are handled by the polyhedral path, FFT/LBM/LibQ/Cigar's hot kernels by
// the skeleton path, and every hot task gets SOME access version.
func TestStrategyMix(t *testing.T) {
	expectAffine := map[string][]string{
		"LU":       {"lu_diag", "lu_row", "lu_col", "lu_int"},
		"Cholesky": {"chol_diag", "chol_panel", "chol_update"},
		// sigma_x sweeps St[i] linearly (the XOR is on the value, not the
		// address), so the polyhedral path legitimately covers it.
		"LibQ": {"libq_sigma_x"},
	}
	expectSkeleton := map[string][]string{
		"FFT":   {"fft_bitrev", "fft_stage"},
		"LBM":   {"lbm_stream", "lbm_collide"},
		"LibQ":  {"libq_cnot", "libq_toffoli", "libq_phase"},
		"Cigar": {"ga_eval", "ga_cross", "ga_mut"},
		"CG":    {"cg_spmv"},
	}
	for _, app := range Apps() {
		b, err := app.Build(Auto)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		for _, task := range expectAffine[app.Name] {
			r := b.Results[task]
			if r == nil || r.Strategy != dae.StrategyAffine {
				t.Errorf("%s/%s: strategy %v, want affine (%s)", app.Name, task, strategyOf(r), reasonOf(r))
			}
		}
		for _, task := range expectSkeleton[app.Name] {
			r := b.Results[task]
			if r == nil || r.Strategy != dae.StrategySkeleton {
				t.Errorf("%s/%s: strategy %v, want skeleton (%s)", app.Name, task, strategyOf(r), reasonOf(r))
			}
		}
		// Every task of every app must have an access version of some kind.
		for name, r := range b.Results {
			if r.Access == nil {
				t.Errorf("%s/%s: no access version (%s)", app.Name, name, r.Reason)
			}
		}
	}
}

func strategyOf(r *dae.Result) dae.Strategy {
	if r == nil {
		return dae.StrategyNone
	}
	return r.Strategy
}

func reasonOf(r *dae.Result) string {
	if r == nil {
		return "missing result"
	}
	return r.Reason
}

// TestMemoryBoundAppsGainMost reproduces the paper's qualitative split: the
// memory-bound apps (LibQ, Cigar) must show larger DAE EDP gains than the
// compute-bound ones would lose, and every app except possibly LBM must not
// lose EDP with DAE optimal against CAE at fmax.
func TestEDPGainsAcrossApps(t *testing.T) {
	if testing.Short() {
		t.Skip("full 7-app sweep in short mode")
	}
	m := rt.DefaultMachine()
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			bDAE, err := app.Build(Auto)
			if err != nil {
				t.Fatal(err)
			}
			cfg := rt.DefaultTraceConfig()
			trDAE, err := rt.Run(bDAE.W, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bCAE, err := app.Build(Auto)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Decoupled = false
			trCAE, err := rt.Run(bCAE.W, cfg)
			if err != nil {
				t.Fatal(err)
			}
			base := rt.Evaluate(trCAE, m, rt.PolicyFixed)
			caeOpt := rt.Evaluate(trCAE, m, rt.PolicyOptimalEDP)
			daeOpt := rt.Evaluate(trDAE, m, rt.PolicyOptimalEDP)

			t.Logf("%s: CAE@fmax T=%.4gms EDP=%.4g | CAE-opt EDP=%.4g | ADAE-opt T=%.4gms EDP=%.4g (%.1f%% EDP gain)",
				app.Name, base.Time*1e3, base.EDP, caeOpt.EDP,
				daeOpt.Time*1e3, daeOpt.EDP, 100*(1-daeOpt.EDP/base.EDP))

			if daeOpt.EDP > base.EDP*1.02 {
				t.Errorf("%s: DAE optimal EDP %.4g worse than CAE@fmax %.4g", app.Name, daeOpt.EDP, base.EDP)
			}
			if app.Name == "LBM" {
				// The paper's exception (§6.1): LBM's writes stay coupled to
				// its compute, so coupled frequency scaling improves EDP at
				// least as much as DAE does.
				if caeOpt.EDP > daeOpt.EDP*1.10 {
					t.Errorf("LBM: expected coupled optimal EDP (%.4g) to rival DAE's (%.4g)", caeOpt.EDP, daeOpt.EDP)
				}
				return
			}
			if daeOpt.Time > base.Time*1.15 {
				t.Errorf("%s: DAE time degradation %.1f%% exceeds 15%%", app.Name, 100*(daeOpt.Time/base.Time-1))
			}
		})
	}
}
