package bench

import (
	"fmt"

	"dae/internal/interp"
	"dae/internal/rt"
)

// LBM: a D2Q9 lattice-Boltzmann step (the SPEC CPU2006 470.lbm role) in
// pull form: a gather streaming kernel followed by a collision kernel with
// bounce-back at obstacle cells. The streaming offsets are loaded from a
// table and the obstacle test is data-dependent control flow, so both
// kernels are non-affine (Table 1: 0/1 affine for the hot loop). Collision
// writes (9 per cell) are coupled to the computation in the execute phase —
// the reason the paper's LBM benefits less from DAE than from plain coupled
// frequency scaling (§6.1).
const lbmSrc = `
task lbm_stream(float Src[Q][HW], float Tmp[Q][HW], int Off[Q], int Q, int HW, int lo, int hi) {
	for (int idx = lo; idx < hi; idx++) {
		for (int q = 0; q < Q; q++) {
			Tmp[q][idx] = Src[q][idx - Off[q]];
		}
	}
}

task lbm_collide(float Tmp[Q][HW], float Dst[Q][HW], int Obst[HW], float Cx[Q], float Cy[Q], float Wt[Q], int Opp[Q], int Q, int HW, int lo, int hi, float omega) {
	for (int idx = lo; idx < hi; idx++) {
		int ob = Obst[idx];
		if (ob == 1) {
			for (int q = 0; q < Q; q++) {
				Dst[q][idx] = Tmp[Opp[q]][idx];
			}
		} else {
			float rho = 0;
			float ux = 0;
			float uy = 0;
			for (int q = 0; q < Q; q++) {
				float f = Tmp[q][idx];
				rho += f;
				ux += f * Cx[q];
				uy += f * Cy[q];
			}
			ux /= rho;
			uy /= rho;
			float usq = ux*ux + uy*uy;
			for (int q = 0; q < Q; q++) {
				float cu = Cx[q]*ux + Cy[q]*uy;
				float feq = Wt[q] * rho * (1.0 + 3.0*cu + 4.5*cu*cu - 1.5*usq);
				float fq = Tmp[q][idx];
				Dst[q][idx] = fq - omega * (fq - feq);
			}
		}
	}
}

// The expert's manual access versions prefetch the distributions and the
// obstacle map at cache-line granularity, skipping the small constant
// tables that stay resident.
void lbm_stream_manual(float Src[Q][HW], float Tmp[Q][HW], int Off[Q], int Q, int HW, int lo, int hi) {
	for (int idx = lo; idx < hi; idx += 8) {
		for (int q = 0; q < Q; q++) {
			prefetch Src[q][idx];
		}
	}
}

void lbm_collide_manual(float Tmp[Q][HW], float Dst[Q][HW], int Obst[HW], float Cx[Q], float Cy[Q], float Wt[Q], int Opp[Q], int Q, int HW, int lo, int hi, float omega) {
	for (int idx = lo; idx < hi; idx += 8) {
		prefetch Obst[idx];
		for (int q = 0; q < Q; q++) {
			prefetch Tmp[q][idx];
		}
	}
}
`

const (
	lbmH     = 96
	lbmW     = 96
	lbmSteps = 3
	lbmChunk = 4 // rows per task, sized to fit the private caches (§3.1)
	// lbmPad pads each of the 9 distribution planes so their stride is not a
	// multiple of the cache set count (the standard array-padding fix; an
	// unpadded 9216-element plane stride maps all planes onto the same sets).
	lbmPad = 72
)

func buildLBM(v Variant) (*Built, error) {
	hw := lbmH*lbmW + lbmPad
	hints := map[string]int64{
		"Q": 9, "HW": int64(hw), "lo": int64(lbmW), "hi": int64(lbmW + lbmChunk*lbmW),
		"omega": 1,
	}
	w, results, err := buildCommon("LBM", lbmSrc, hints, v)
	if err != nil {
		return nil, err
	}

	h := interp.NewHeap()
	f0 := h.AllocFloat("F", 9*hw)
	tmp := h.AllocFloat("Tmp", 9*hw)
	obst := h.AllocInt("Obst", hw)
	cx := h.AllocFloat("Cx", 9)
	cy := h.AllocFloat("Cy", 9)
	wt := h.AllocFloat("Wt", 9)
	off := h.AllocInt("Off", 9)
	opp := h.AllocInt("Opp", 9)

	// D2Q9 constants: rest, E, N, W, S, NE, NW, SW, SE.
	dx := []int64{0, 1, 0, -1, 0, 1, -1, -1, 1}
	dy := []int64{0, 0, 1, 0, -1, 1, 1, -1, -1}
	wts := []float64{4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36}
	opps := []int64{0, 3, 4, 1, 2, 7, 8, 5, 6}
	for q := 0; q < 9; q++ {
		cx.F[q] = float64(dx[q])
		cy.F[q] = float64(dy[q])
		wt.F[q] = wts[q]
		off.I[q] = dy[q]*int64(lbmW) + dx[q]
		opp.I[q] = opps[q]
	}
	rng := newLCG(99)
	for i := 0; i < lbmH*lbmW; i++ {
		row, col := i/lbmW, i%lbmW
		if row > 1 && row < lbmH-2 && col > 1 && col < lbmW-2 && rng.intn(20) == 0 {
			obst.I[i] = 1
		}
	}
	for q := 0; q < 9; q++ {
		for i := 0; i < lbmH*lbmW; i++ {
			f0.F[q*hw+i] = wts[q] * (1 + 0.01*rng.float())
		}
	}
	ref := append([]float64{}, f0.F...)
	refObst := append([]int64{}, obst.I...)

	const omega = 1.2
	interiorChunks := func(mk func(lo, hi int64) rt.Task) []rt.Task {
		var batch []rt.Task
		for row := 1; row < lbmH-1; row += lbmChunk {
			last := row + lbmChunk
			if last > lbmH-1 {
				last = lbmH - 1
			}
			batch = append(batch, mk(int64(row*lbmW), int64(last*lbmW)))
		}
		return batch
	}
	for step := 0; step < lbmSteps; step++ {
		w.Batches = append(w.Batches, interiorChunks(func(lo, hi int64) rt.Task {
			return rt.Task{Name: "lbm_stream", Args: []interp.Value{
				interp.Ptr(f0), interp.Ptr(tmp), interp.Ptr(off),
				interp.Int(9), interp.Int(int64(hw)), interp.Int(lo), interp.Int(hi),
			}}
		}))
		w.Batches = append(w.Batches, interiorChunks(func(lo, hi int64) rt.Task {
			return rt.Task{Name: "lbm_collide", Args: []interp.Value{
				interp.Ptr(tmp), interp.Ptr(f0), interp.Ptr(obst),
				interp.Ptr(cx), interp.Ptr(cy), interp.Ptr(wt), interp.Ptr(opp),
				interp.Int(9), interp.Int(int64(hw)), interp.Int(lo), interp.Int(hi),
				interp.Float(omega),
			}}
		}))
	}

	verify := func() error {
		out := refLBM(ref, refObst, dx, dy, wts, opps, omega, hw)
		for i := range out {
			if !approxEqual(out[i], f0.F[i], 1e-6) {
				return fmt.Errorf("LBM mismatch at %d: got %g, want %g", i, f0.F[i], out[i])
			}
		}
		return nil
	}
	return &Built{W: w, Results: results, Heap: h, Verify: verify}, nil
}

// refLBM is the Go reference pull-scheme stream+collide.
func refLBM(init []float64, obst []int64, dx, dy []int64, wts []float64, opp []int64, omega float64, hw int) []float64 {
	f := append([]float64{}, init...)
	tmp := make([]float64, 9*hw)
	for step := 0; step < lbmSteps; step++ {
		for idx := lbmW; idx < (lbmH-1)*lbmW; idx++ {
			for q := 0; q < 9; q++ {
				off := dy[q]*int64(lbmW) + dx[q]
				tmp[q*hw+idx] = f[q*hw+idx-int(off)]
			}
		}
		for idx := lbmW; idx < (lbmH-1)*lbmW; idx++ {
			if obst[idx] == 1 {
				for q := 0; q < 9; q++ {
					f[q*hw+idx] = tmp[int(opp[q])*hw+idx]
				}
				continue
			}
			rho, ux, uy := 0.0, 0.0, 0.0
			for q := 0; q < 9; q++ {
				v := tmp[q*hw+idx]
				rho += v
				ux += v * float64(dx[q])
				uy += v * float64(dy[q])
			}
			ux /= rho
			uy /= rho
			usq := ux*ux + uy*uy
			for q := 0; q < 9; q++ {
				cu := float64(dx[q])*ux + float64(dy[q])*uy
				feq := wts[q] * rho * (1 + 3*cu + 4.5*cu*cu - 1.5*usq)
				fq := tmp[q*hw+idx]
				f[q*hw+idx] = fq - omega*(fq-feq)
			}
		}
	}
	return f
}
