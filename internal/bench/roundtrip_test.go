package bench

import (
	"testing"

	"dae/internal/interp"
	"dae/internal/ir"
)

// TestModuleTextRoundTrip pushes every benchmark's full optimized module
// (tasks, helpers, generated access versions, manual access functions)
// through the IR printer and parser and checks print-parse-print
// idempotence plus re-verification — a broad structural test of both the
// printer and the parser over every instruction shape the compiler emits.
func TestModuleTextRoundTrip(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			b, err := app.Build(Auto)
			if err != nil {
				t.Fatal(err)
			}
			s1 := b.W.Module.String()
			m2, err := ir.ParseModule(s1)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			s2 := m2.String()
			m3, err := ir.ParseModule(s2)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if s3 := m3.String(); s2 != s3 {
				t.Error("print-parse-print is not idempotent")
			}
			if len(m2.Funcs) != len(b.W.Module.Funcs) {
				t.Errorf("function count %d, want %d", len(m2.Funcs), len(b.W.Module.Funcs))
			}
		})
	}
}

// TestReparsedModuleComputesSameResult executes a kernel from a reparsed
// module and compares against the original execution bit for bit.
func TestReparsedModuleComputesSameResult(t *testing.T) {
	b, err := buildLUScaled(Auto, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	mod := b.W.Module
	m2, err := ir.ParseModule(mod.String())
	if err != nil {
		t.Fatal(err)
	}

	run := func(m *ir.Module) []float64 {
		h := interp.NewHeap()
		a := h.AllocFloat("A", 64*64)
		initLU(a.F, 64)
		env := interp.NewEnv(interp.NewProgram(m), nil)
		// One interior update block exercises loads, stores, fma chains.
		if _, err := env.Call(m.Func("lu_int"), interp.Ptr(a),
			interp.Int(64), interp.Int(16),
			interp.Int(16), interp.Int(32), interp.Int(0)); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(a.F))
		copy(out, a.F)
		return out
	}
	orig := run(mod)
	reparsed := run(m2)
	for i := range orig {
		if orig[i] != reparsed[i] {
			t.Fatalf("mismatch at %d: %g vs %g", i, orig[i], reparsed[i])
		}
	}
}
