package bench

import (
	"fmt"

	"dae/internal/interp"
	"dae/internal/rt"
)

// LU: blocked right-looking LU factorization without pivoting (the SPLASH2
// kernel's structure). Four task types per step k: the diagonal-block
// factorization, the row-panel and column-panel triangular updates, and the
// interior rank-B updates. Every task is a pure affine loop nest, so the
// compiler handles LU entirely through the polyhedral path (Table 1: 3/3
// affine loops).
const luSrc = `
task lu_diag(float A[N][N], int N, int B, int kk) {
	for (int i = 0; i < B; i++) {
		for (int j = i+1; j < B; j++) {
			A[kk+j][kk+i] /= A[kk+i][kk+i];
			for (int t = i+1; t < B; t++) {
				A[kk+j][kk+t] -= A[kk+j][kk+i] * A[kk+i][kk+t];
			}
		}
	}
}

task lu_row(float A[N][N], int N, int B, int kk, int jj) {
	for (int i = 0; i < B; i++) {
		for (int r = 0; r < i; r++) {
			for (int c = 0; c < B; c++) {
				A[kk+i][jj+c] -= A[kk+i][kk+r] * A[kk+r][jj+c];
			}
		}
	}
}

task lu_col(float A[N][N], int N, int B, int kk, int ii) {
	for (int c = 0; c < B; c++) {
		for (int r = 0; r < B; r++) {
			float s = A[ii+r][kk+c];
			for (int t = 0; t < c; t++) {
				s -= A[ii+r][kk+t] * A[kk+t][kk+c];
			}
			A[ii+r][kk+c] = s / A[kk+c][kk+c];
		}
	}
}

task lu_int(float A[N][N], int N, int B, int ii, int jj, int kk) {
	for (int i = 0; i < B; i++) {
		for (int j = 0; j < B; j++) {
			float s = A[ii+i][jj+j];
			for (int t = 0; t < B; t++) {
				s -= A[ii+i][kk+t] * A[kk+t][jj+j];
			}
			A[ii+i][jj+j] = s;
		}
	}
}

// Manual DAE access versions: the expert prefetches selectively — only the
// blocks that are read-shared with other tasks, skipping the read-write
// target block (§6.2.1: "performs selective prefetching, thus less data is
// actually brought in the cache").
void lu_diag_manual(float A[N][N], int N, int B, int kk) {
	for (int i = 0; i < B; i++) {
		for (int j = 0; j < B; j++) {
			prefetch A[kk+i][kk+j];
		}
	}
}

void lu_row_manual(float A[N][N], int N, int B, int kk, int jj) {
	for (int i = 0; i < B; i++) {
		for (int j = 0; j < B; j++) {
			prefetch A[kk+i][kk+j];
		}
	}
}

void lu_col_manual(float A[N][N], int N, int B, int kk, int ii) {
	for (int i = 0; i < B; i++) {
		for (int j = 0; j < B; j++) {
			prefetch A[kk+i][kk+j];
		}
	}
}

void lu_int_manual(float A[N][N], int N, int B, int ii, int jj, int kk) {
	for (int i = 0; i < B; i++) {
		for (int j = 0; j < B; j++) {
			prefetch A[ii+i][kk+j];
			prefetch A[kk+i][jj+j];
		}
	}
}
`

// luN and luB size the default evaluation run.
const (
	luN = 192
	luB = 32
)

func buildLU(v Variant) (*Built, error) {
	return buildLUScaled(v, luN, luB)
}

func buildLUScaled(v Variant, n, b int) (*Built, error) {
	hints := map[string]int64{"N": int64(n), "B": int64(b), "kk": 0, "ii": int64(b), "jj": int64(b)}
	w, results, err := buildCommon("LU", luSrc, hints, v)
	if err != nil {
		return nil, err
	}

	h := interp.NewHeap()
	a := h.AllocFloat("A", n*n)
	initLU(a.F, n)
	ref := make([]float64, n*n)
	copy(ref, a.F)

	ap := interp.Ptr(a)
	argsN := interp.Int(int64(n))
	argsB := interp.Int(int64(b))
	nb := n / b
	for k := 0; k < nb; k++ {
		kk := interp.Int(int64(k * b))
		w.Batches = append(w.Batches, []rt.Task{{
			Name: "lu_diag", Args: []interp.Value{ap, argsN, argsB, kk},
		}})
		var panel []rt.Task
		for j := k + 1; j < nb; j++ {
			panel = append(panel, rt.Task{Name: "lu_row",
				Args: []interp.Value{ap, argsN, argsB, kk, interp.Int(int64(j * b))}})
			panel = append(panel, rt.Task{Name: "lu_col",
				Args: []interp.Value{ap, argsN, argsB, kk, interp.Int(int64(j * b))}})
		}
		if len(panel) > 0 {
			w.Batches = append(w.Batches, panel)
		}
		var interior []rt.Task
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				interior = append(interior, rt.Task{Name: "lu_int",
					Args: []interp.Value{ap, argsN, argsB,
						interp.Int(int64(i * b)), interp.Int(int64(j * b)), kk}})
			}
		}
		if len(interior) > 0 {
			w.Batches = append(w.Batches, interior)
		}
	}

	verify := func() error {
		refLU(ref, n)
		for i := range ref {
			if !approxEqual(ref[i], a.F[i], 1e-6) {
				return fmt.Errorf("LU mismatch at %d: got %g, want %g", i, a.F[i], ref[i])
			}
		}
		return nil
	}
	return &Built{W: w, Results: results, Heap: h, Verify: verify}, nil
}

// initLU fills a diagonally dominant matrix so factoring needs no pivoting.
func initLU(a []float64, n int) {
	rng := newLCG(12345)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = rng.float() + 0.5
		}
		a[i*n+i] += float64(n)
	}
}

// refLU is the unblocked right-looking reference factorization; it performs
// the same floating-point operations in the same order as the blocked task
// decomposition.
func refLU(a []float64, n int) {
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= a[i*n+k] * a[k*n+j]
			}
		}
	}
}
