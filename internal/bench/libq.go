package bench

import (
	"fmt"

	"dae/internal/interp"
	"dae/internal/rt"
)

// LibQ: quantum gate simulation in the style of SPEC CPU2006 462.libquantum:
// the register is an array of basis states St plus amplitude arrays, and each
// gate sweeps the whole register testing control bits. The bit tests are
// data-dependent conditionals inside the sweep loops — the skeleton path
// drops them, prefetching the whole chunk (§6.2.3: the automatic version
// prefetches more than the expert's, trading a longer low-frequency access
// phase for energy). All loops are non-affine (Table 1: 0/6 affine).
const libqSrc = `
task libq_sigma_x(int St[n], int n, int tmask, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		St[i] = St[i] ^ tmask;
	}
}

task libq_cnot(int St[n], int n, int cmask, int tmask, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		int s = St[i];
		if ((s & cmask) == cmask) {
			St[i] = s ^ tmask;
		}
	}
}

task libq_toffoli(int St[n], int n, int c1mask, int c2mask, int tmask, int lo, int hi) {
	int cm = c1mask | c2mask;
	for (int i = lo; i < hi; i++) {
		int s = St[i];
		if ((s & cm) == cm) {
			St[i] = s ^ tmask;
		}
	}
}

task libq_phase(int St[n], float Are[n], float Aim[n], int n, int tmask, float pr, float pi, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		int s = St[i];
		float ar = Are[i];
		float ai = Aim[i];
		if ((s & tmask) == tmask) {
			Are[i] = ar * pr - ai * pi;
			Aim[i] = ar * pi + ai * pr;
		}
	}
}

// The expert's manual access versions prefetch one address per cache line
// (the redundant-prefetch elimination of §6.2.3) and only the arrays a gate
// touches.
void libq_sigma_x_manual(int St[n], int n, int tmask, int lo, int hi) {
	for (int i = lo; i < hi; i += 8) {
		prefetch St[i];
	}
}

void libq_cnot_manual(int St[n], int n, int cmask, int tmask, int lo, int hi) {
	for (int i = lo; i < hi; i += 8) {
		prefetch St[i];
	}
}

void libq_toffoli_manual(int St[n], int n, int c1mask, int c2mask, int tmask, int lo, int hi) {
	for (int i = lo; i < hi; i += 8) {
		prefetch St[i];
	}
}

void libq_phase_manual(int St[n], float Are[n], float Aim[n], int n, int tmask, float pr, float pi, int lo, int hi) {
	for (int i = lo; i < hi; i += 8) {
		prefetch St[i];
		prefetch Are[i];
		prefetch Aim[i];
	}
}
`

const (
	libqN     = 32768
	libqChunk = 2048
)

// libqGate describes one gate of the simulated circuit.
type libqGate struct {
	kind   string
	bits   [3]int
	pr, pi float64
}

func buildLibQ(v Variant) (*Built, error) {
	n := libqN
	hints := map[string]int64{"n": int64(n), "lo": 0, "hi": libqChunk}
	w, results, err := buildCommon("LibQ", libqSrc, hints, v)
	if err != nil {
		return nil, err
	}

	h := interp.NewHeap()
	st := h.AllocInt("St", n)
	are := h.AllocFloat("Are", n)
	aim := h.AllocFloat("Aim", n)
	rng := newLCG(31337)
	for i := 0; i < n; i++ {
		st.I[i] = int64(i) ^ int64(rng.intn(1<<15))
		are.F[i] = rng.float()*2 - 1
		aim.F[i] = rng.float()*2 - 1
	}
	refSt := append([]int64{}, st.I...)
	refRe := append([]float64{}, are.F...)
	refIm := append([]float64{}, aim.F...)

	gates := libqCircuit()
	for _, g := range gates {
		var batch []rt.Task
		for lo := 0; lo < n; lo += libqChunk {
			hi := lo + libqChunk
			args := libqArgs(g, st, are, aim, n, lo, hi)
			batch = append(batch, rt.Task{Name: "libq_" + g.kind, Args: args})
		}
		w.Batches = append(w.Batches, batch)
	}

	verify := func() error {
		refLibQ(refSt, refRe, refIm, gates)
		for i := 0; i < n; i++ {
			if refSt[i] != st.I[i] {
				return fmt.Errorf("LibQ state mismatch at %d: got %d, want %d", i, st.I[i], refSt[i])
			}
			if !approxEqual(refRe[i], are.F[i], 1e-9) || !approxEqual(refIm[i], aim.F[i], 1e-9) {
				return fmt.Errorf("LibQ amplitude mismatch at %d", i)
			}
		}
		return nil
	}
	return &Built{W: w, Results: results, Heap: h, Verify: verify}, nil
}

// libqCircuit returns a deterministic 24-gate circuit mixing gate types,
// like the modular-exponentiation circuits libquantum builds for Shor runs.
func libqCircuit() []libqGate {
	var gates []libqGate
	rng := newLCG(2718)
	for k := 0; k < 24; k++ {
		b1 := rng.intn(14)
		b2 := (b1 + 1 + rng.intn(12)) % 14
		b3 := (b2 + 1 + rng.intn(12)) % 14
		switch k % 4 {
		case 0:
			gates = append(gates, libqGate{kind: "toffoli", bits: [3]int{b1, b2, b3}})
		case 1:
			gates = append(gates, libqGate{kind: "cnot", bits: [3]int{b1, b2, 0}})
		case 2:
			gates = append(gates, libqGate{kind: "sigma_x", bits: [3]int{b1, 0, 0}})
		default:
			gates = append(gates, libqGate{kind: "phase", bits: [3]int{b1, 0, 0}, pr: 0.6, pi: 0.8})
		}
	}
	return gates
}

func libqArgs(g libqGate, st, are, aim *interp.Seg, n, lo, hi int) []interp.Value {
	nn := interp.Int(int64(n))
	l, r := interp.Int(int64(lo)), interp.Int(int64(hi))
	switch g.kind {
	case "sigma_x":
		return []interp.Value{interp.Ptr(st), nn, interp.Int(1 << g.bits[0]), l, r}
	case "cnot":
		return []interp.Value{interp.Ptr(st), nn,
			interp.Int(1 << g.bits[0]), interp.Int(1 << g.bits[1]), l, r}
	case "toffoli":
		return []interp.Value{interp.Ptr(st), nn,
			interp.Int(1 << g.bits[0]), interp.Int(1 << g.bits[1]), interp.Int(1 << g.bits[2]), l, r}
	default: // phase
		return []interp.Value{interp.Ptr(st), interp.Ptr(are), interp.Ptr(aim), nn,
			interp.Int(1 << g.bits[0]), interp.Float(g.pr), interp.Float(g.pi), l, r}
	}
}

// refLibQ is the Go reference circuit simulation.
func refLibQ(st []int64, re, im []float64, gates []libqGate) {
	for _, g := range gates {
		switch g.kind {
		case "sigma_x":
			t := int64(1) << g.bits[0]
			for i := range st {
				st[i] ^= t
			}
		case "cnot":
			c, t := int64(1)<<g.bits[0], int64(1)<<g.bits[1]
			for i := range st {
				if st[i]&c == c {
					st[i] ^= t
				}
			}
		case "toffoli":
			cm := int64(1)<<g.bits[0] | int64(1)<<g.bits[1]
			t := int64(1) << g.bits[2]
			for i := range st {
				if st[i]&cm == cm {
					st[i] ^= t
				}
			}
		default: // phase
			t := int64(1) << g.bits[0]
			for i := range st {
				if st[i]&t == t {
					ar, ai := re[i], im[i]
					re[i] = ar*g.pr - ai*g.pi
					im[i] = ar*g.pi + ai*g.pr
				}
			}
		}
	}
}
