package bench

import (
	"testing"

	"dae/internal/dae"
	"dae/internal/rt"
)

// traceAndVerify traces the built workload and checks the computed result.
func traceAndVerify(t *testing.T, b *Built, decoupled bool) *rt.Trace {
	t.Helper()
	cfg := rt.DefaultTraceConfig()
	cfg.Decoupled = decoupled
	tr, err := rt.Run(b.W, cfg)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if err := b.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return tr
}

func TestLUAutoAffineAndCorrect(t *testing.T) {
	b, err := buildLU(Auto)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []string{"lu_diag", "lu_row", "lu_col", "lu_int"} {
		r := b.Results[task]
		if r == nil {
			t.Fatalf("no result for %s", task)
		}
		if r.Strategy != dae.StrategyAffine {
			t.Errorf("%s strategy = %s (%s), want affine", task, r.Strategy, r.Reason)
		}
	}
	tr := traceAndVerify(t, b, true)
	if len(tr.Records) == 0 {
		t.Fatal("no task records")
	}
	for _, rec := range tr.Records {
		if !rec.HasAccess {
			t.Fatalf("task %s ran without access phase", rec.Name)
		}
	}
}

func TestLUManualCorrect(t *testing.T) {
	b, err := buildLU(Manual)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.W.Access) != 4 {
		t.Fatalf("manual access map has %d entries, want 4", len(b.W.Access))
	}
	traceAndVerify(t, b, true)
}

func TestLUCoupledCorrect(t *testing.T) {
	b, err := buildLU(Auto)
	if err != nil {
		t.Fatal(err)
	}
	traceAndVerify(t, b, false)
}

func TestCholeskyAutoAffineAndCorrect(t *testing.T) {
	b, err := buildCholesky(Auto)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []string{"chol_diag", "chol_panel", "chol_update"} {
		r := b.Results[task]
		if r == nil || r.Strategy != dae.StrategyAffine {
			t.Errorf("%s not affine: %+v", task, r)
		}
	}
	traceAndVerify(t, b, true)
}

func TestCholeskyManualCorrect(t *testing.T) {
	b, err := buildCholesky(Manual)
	if err != nil {
		t.Fatal(err)
	}
	traceAndVerify(t, b, true)
}

func TestLUDAEBeatsCAEOnEDP(t *testing.T) {
	bDAE, err := buildLU(Auto)
	if err != nil {
		t.Fatal(err)
	}
	trDAE := traceAndVerify(t, bDAE, true)

	bCAE, err := buildLU(Auto)
	if err != nil {
		t.Fatal(err)
	}
	trCAE := traceAndVerify(t, bCAE, false)

	m := rt.DefaultMachine()
	base := rt.Evaluate(trCAE, m, rt.PolicyFixed)
	daeOpt := rt.Evaluate(trDAE, m, rt.PolicyOptimalEDP)
	if daeOpt.EDP >= base.EDP {
		t.Errorf("LU DAE optimal EDP %.4g should beat CAE@fmax %.4g", daeOpt.EDP, base.EDP)
	}
	if daeOpt.Time > base.Time*1.10 {
		t.Errorf("LU DAE time %.4g vs CAE %.4g exceeds 10%% degradation", daeOpt.Time, base.Time)
	}
}
