package bench

import (
	"fmt"
	"math"

	"dae/internal/interp"
	"dae/internal/rt"
)

// FFT: iterative radix-2 decimation-in-time FFT over split real/imaginary
// arrays (the SPLASH2 kernel's role). The bit-reversal permutation and the
// div/mod butterfly indexing are non-affine, so the compiler uses the
// skeleton strategy for every loop (Table 1: 0/6 affine); the butterfly
// helpers are function calls that must be inlined first (§6.2.2).
const fftSrc = `
float cmulre(float a, float b, float c, float d) { return a*c - b*d; }
float cmulim(float a, float b, float c, float d) { return a*d + b*c; }

task fft_bitrev(float Xre[n], float Xim[n], float Yre[n], float Yim[n], int n, int bits, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		int r = 0;
		int v = i;
		for (int b = 0; b < bits; b++) {
			r = (r << 1) | (v & 1);
			v = v >> 1;
		}
		Yre[r] = Xre[i];
		Yim[r] = Xim[i];
	}
}

task fft_stage(float Yre[n], float Yim[n], float Wre[n], float Wim[n], int n, int s, int woff, int lo, int hi) {
	int m = 1 << s;
	int hm = m >> 1;
	for (int j = lo; j < hi; j++) {
		int blk = j / hm;
		int t = j % hm;
		int i0 = blk * m + t;
		int i1 = i0 + hm;
		float wr = Wre[woff + t];
		float wi = Wim[woff + t];
		float ar = Yre[i0];
		float ai = Yim[i0];
		float br = Yre[i1];
		float bi = Yim[i1];
		float tr = cmulre(wr, wi, br, bi);
		float ti = cmulim(wr, wi, br, bi);
		Yre[i0] = ar + tr;
		Yim[i0] = ai + ti;
		Yre[i1] = ar - tr;
		Yim[i1] = ai - ti;
	}
}

// The expert's manual access version for the butterfly stages prefetches the
// contiguous region the chunk touches, one prefetch per cache line, and
// skips the twiddle tables (§6.2.2: "greatly simplified ... prefetches less
// data"). Bit reversal gets no manual access version: its gather pattern is
// impractical to write by hand, which is exactly the limitation of the
// manual approach the paper motivates with.
void fft_stage_manual(float Yre[n], float Yim[n], float Wre[n], float Wim[n], int n, int s, int woff, int lo, int hi) {
	int m = 1 << s;
	int hm = m >> 1;
	int base = (lo / hm) * m;
	int cnt = ((hi - lo) / hm) * m;
	for (int i = 0; i < cnt; i += 8) {
		prefetch Yre[base + i];
		prefetch Yim[base + i];
	}
}
`

const (
	fftN = 16384
	// Task granularities are sized so each task's working set fits the
	// private L1+L2 (§3.1): a butterfly chunk touches ~32 KiB of Y plus
	// twiddles; a bit-reversal chunk gathers one scattered line per element.
	fftChunk    = 512
	fftRevChunk = 256
)

func buildFFT(v Variant) (*Built, error) {
	n := fftN
	bits := 0
	for 1<<bits < n {
		bits++
	}
	hints := map[string]int64{
		"n": int64(n), "bits": int64(bits), "woff": 3,
		"s": 3, "lo": 0, "hi": int64(fftChunk),
	}
	w, results, err := buildCommon("FFT", fftSrc, hints, v)
	if err != nil {
		return nil, err
	}

	h := interp.NewHeap()
	xre := h.AllocFloat("Xre", n)
	xim := h.AllocFloat("Xim", n)
	yre := h.AllocFloat("Yre", n)
	yim := h.AllocFloat("Yim", n)
	// Per-stage twiddle tables laid out contiguously (the standard layout
	// that avoids the power-of-two stride pathology of indexing one global
	// table at stride n/m): stage s's factors live at [woff(s), woff(s)+2^(s-1)).
	wre := h.AllocFloat("Wre", n)
	wim := h.AllocFloat("Wim", n)

	rng := newLCG(4242)
	for i := 0; i < n; i++ {
		xre.F[i] = rng.float()*2 - 1
		xim.F[i] = rng.float()*2 - 1
	}
	woff := make([]int, bits+1)
	{
		o := 0
		for s := 1; s <= bits; s++ {
			woff[s] = o
			m := 1 << s
			hm := m >> 1
			for t := 0; t < hm; t++ {
				ang := -2 * math.Pi * float64(t*(n/m)) / float64(n)
				wre.F[o+t] = math.Cos(ang)
				wim.F[o+t] = math.Sin(ang)
			}
			o += hm
		}
	}
	refRe := append([]float64{}, xre.F...)
	refIm := append([]float64{}, xim.F...)

	args := func(extra ...interp.Value) []interp.Value {
		base := []interp.Value{
			interp.Ptr(yre), interp.Ptr(yim), interp.Ptr(wre), interp.Ptr(wim),
			interp.Int(int64(n)),
		}
		return append(base, extra...)
	}

	// Bit-reversal batch.
	var bitrev []rt.Task
	for lo := 0; lo < n; lo += fftRevChunk {
		bitrev = append(bitrev, rt.Task{Name: "fft_bitrev", Args: []interp.Value{
			interp.Ptr(xre), interp.Ptr(xim), interp.Ptr(yre), interp.Ptr(yim),
			interp.Int(int64(n)), interp.Int(int64(bits)),
			interp.Int(int64(lo)), interp.Int(int64(lo + fftRevChunk)),
		}})
	}
	w.Batches = append(w.Batches, bitrev)

	// One batch per stage.
	for s := 1; s <= bits; s++ {
		var stage []rt.Task
		for lo := 0; lo < n/2; lo += fftChunk {
			stage = append(stage, rt.Task{Name: "fft_stage", Args: args(
				interp.Int(int64(s)), interp.Int(int64(woff[s])),
				interp.Int(int64(lo)), interp.Int(int64(lo+fftChunk)),
			)})
		}
		w.Batches = append(w.Batches, stage)
	}

	verify := func() error {
		gr, gi := refFFT(refRe, refIm)
		for i := 0; i < n; i++ {
			if math.Abs(gr[i]-yre.F[i]) > 1e-6*(1+math.Abs(gr[i])) ||
				math.Abs(gi[i]-yim.F[i]) > 1e-6*(1+math.Abs(gi[i])) {
				return fmt.Errorf("FFT mismatch at %d: got (%g,%g), want (%g,%g)",
					i, yre.F[i], yim.F[i], gr[i], gi[i])
			}
		}
		return nil
	}
	return &Built{W: w, Results: results, Heap: h, Verify: verify}, nil
}

// refFFT is the Go reference: the identical iterative radix-2 DIT algorithm.
func refFFT(re, im []float64) ([]float64, []float64) {
	n := len(re)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	outRe := make([]float64, n)
	outIm := make([]float64, n)
	for i := 0; i < n; i++ {
		r := 0
		v := i
		for b := 0; b < bits; b++ {
			r = (r << 1) | (v & 1)
			v >>= 1
		}
		outRe[r] = re[i]
		outIm[r] = im[i]
	}
	for s := 1; s <= bits; s++ {
		m := 1 << s
		hm := m >> 1
		tw := n / m
		for j := 0; j < n/2; j++ {
			blk := j / hm
			t := j % hm
			i0 := blk*m + t
			i1 := i0 + hm
			ang := -2 * math.Pi * float64(t*tw) / float64(n)
			wr, wi := math.Cos(ang), math.Sin(ang)
			br, bi := outRe[i1], outIm[i1]
			tr := wr*br - wi*bi
			ti := wr*bi + wi*br
			ar, ai := outRe[i0], outIm[i0]
			outRe[i0], outIm[i0] = ar+tr, ai+ti
			outRe[i1], outIm[i1] = ar-tr, ai-ti
		}
	}
	return outRe, outIm
}
