package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	cases := []struct {
		kind Kind
		want error
	}{
		{KindParse, ErrParse},
		{KindLower, ErrLower},
		{KindVerify, ErrVerify},
		{KindTrap, ErrTrap},
		{KindStepBudget, ErrStepBudget},
		{KindHeapBudget, ErrHeapBudget},
		{KindTimeout, ErrTimeout},
		{KindCacheCorrupt, ErrCacheCorrupt},
		{KindPanic, ErrPanic},
	}
	for _, c := range cases {
		err := New(c.kind, "boom")
		if !errors.Is(err, c.want) {
			t.Errorf("New(%v) does not match its sentinel", c.kind)
		}
		for _, other := range cases {
			if other.want != c.want && errors.Is(err, other.want) {
				t.Errorf("New(%v) wrongly matches %v", c.kind, other.kind)
			}
		}
	}
}

func TestWrapPreservesCause(t *testing.T) {
	cause := errors.New("disk on fire")
	err := Wrap(KindCacheCorrupt, fmt.Errorf("entry k: %w", cause))
	if !errors.Is(err, ErrCacheCorrupt) {
		t.Error("wrapped error does not match ErrCacheCorrupt")
	}
	if !errors.Is(err, cause) {
		t.Error("wrapped error lost its cause")
	}
	if Wrap(KindTrap, nil) != nil {
		t.Error("Wrap(nil) must be nil")
	}
}

func TestTrapCarriesPosition(t *testing.T) {
	err := NewTrap(TrapOutOfBounds, "kernel", "body: %t3 = load f64 %t2", "seg=A off=999")
	if !errors.Is(err, ErrTrap) {
		t.Error("trap does not match ErrTrap")
	}
	if TrapOf(err) != TrapOutOfBounds {
		t.Errorf("TrapOf = %v, want out-of-bounds", TrapOf(err))
	}
	msg := err.Error()
	for _, want := range []string{"out-of-bounds", "@kernel", "%t3", "seg=A"} {
		if !strings.Contains(msg, want) {
			t.Errorf("trap message %q missing %q", msg, want)
		}
	}
}

func TestClassOf(t *testing.T) {
	if got := ClassOf(nil); got != "" {
		t.Errorf("ClassOf(nil) = %q", got)
	}
	if got := ClassOf(errors.New("plain")); got != "error" {
		t.Errorf("ClassOf(plain) = %q", got)
	}
	if got := ClassOf(fmt.Errorf("ctx: %w", New(KindStepBudget, "x"))); got != "step-budget" {
		t.Errorf("ClassOf(step budget) = %q", got)
	}
}

func TestRecoverConvertsPanics(t *testing.T) {
	run := func(f func()) (err error) {
		defer Recover(&err, "trace-run")
		f()
		return nil
	}
	if err := run(func() {}); err != nil {
		t.Fatalf("no panic, got %v", err)
	}
	err := run(func() { panic("index out of range") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("panic not converted: %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || len(fe.Stack) == 0 {
		t.Error("recovered panic lost its stack")
	}
	if !strings.Contains(err.Error(), "trace-run") {
		t.Errorf("boundary name missing from %q", err)
	}

	// A typed fault panic (heap budget) passes through unchanged.
	typed := New(KindHeapBudget, "over cap")
	err = run(func() { panic(typed) })
	if !errors.Is(err, ErrHeapBudget) {
		t.Fatalf("typed panic reclassified: %v", err)
	}
}
