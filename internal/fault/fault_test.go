package fault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"strings"
	"testing"
	"time"
)

func TestSentinelMatching(t *testing.T) {
	cases := []struct {
		kind Kind
		want error
	}{
		{KindParse, ErrParse},
		{KindLower, ErrLower},
		{KindVerify, ErrVerify},
		{KindTrap, ErrTrap},
		{KindStepBudget, ErrStepBudget},
		{KindHeapBudget, ErrHeapBudget},
		{KindTimeout, ErrTimeout},
		{KindCacheCorrupt, ErrCacheCorrupt},
		{KindPanic, ErrPanic},
		{KindDegraded, ErrDegraded},
		{KindQuarantined, ErrQuarantined},
	}
	for _, c := range cases {
		err := New(c.kind, "boom")
		if !errors.Is(err, c.want) {
			t.Errorf("New(%v) does not match its sentinel", c.kind)
		}
		for _, other := range cases {
			if other.want != c.want && errors.Is(err, other.want) {
				t.Errorf("New(%v) wrongly matches %v", c.kind, other.kind)
			}
		}
	}
}

func TestWrapPreservesCause(t *testing.T) {
	cause := errors.New("disk on fire")
	err := Wrap(KindCacheCorrupt, fmt.Errorf("entry k: %w", cause))
	if !errors.Is(err, ErrCacheCorrupt) {
		t.Error("wrapped error does not match ErrCacheCorrupt")
	}
	if !errors.Is(err, cause) {
		t.Error("wrapped error lost its cause")
	}
	if Wrap(KindTrap, nil) != nil {
		t.Error("Wrap(nil) must be nil")
	}
}

func TestTrapCarriesPosition(t *testing.T) {
	err := NewTrap(TrapOutOfBounds, "kernel", "body: %t3 = load f64 %t2", "seg=A off=999")
	if !errors.Is(err, ErrTrap) {
		t.Error("trap does not match ErrTrap")
	}
	if TrapOf(err) != TrapOutOfBounds {
		t.Errorf("TrapOf = %v, want out-of-bounds", TrapOf(err))
	}
	msg := err.Error()
	for _, want := range []string{"out-of-bounds", "@kernel", "%t3", "seg=A"} {
		if !strings.Contains(msg, want) {
			t.Errorf("trap message %q missing %q", msg, want)
		}
	}
}

func TestClassOf(t *testing.T) {
	if got := ClassOf(nil); got != "" {
		t.Errorf("ClassOf(nil) = %q", got)
	}
	if got := ClassOf(errors.New("plain")); got != "error" {
		t.Errorf("ClassOf(plain) = %q", got)
	}
	if got := ClassOf(fmt.Errorf("ctx: %w", New(KindStepBudget, "x"))); got != "step-budget" {
		t.Errorf("ClassOf(step budget) = %q", got)
	}
}

func TestRecoverConvertsPanics(t *testing.T) {
	run := func(f func()) (err error) {
		defer Recover(&err, "trace-run")
		f()
		return nil
	}
	if err := run(func() {}); err != nil {
		t.Fatalf("no panic, got %v", err)
	}
	err := run(func() { panic("index out of range") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("panic not converted: %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || len(fe.Stack) == 0 {
		t.Error("recovered panic lost its stack")
	}
	if !strings.Contains(err.Error(), "trace-run") {
		t.Errorf("boundary name missing from %q", err)
	}

	// A typed fault panic (heap budget) passes through unchanged.
	typed := New(KindHeapBudget, "over cap")
	err = run(func() { panic(typed) })
	if !errors.Is(err, ErrHeapBudget) {
		t.Fatalf("typed panic reclassified: %v", err)
	}
}

func TestQuarantineWrapKeepsCauseClass(t *testing.T) {
	// The supervisor wraps the original access-phase fault when it
	// quarantines a task type: the result must match both sentinels.
	cause := NewTrap(TrapOutOfBounds, "lu_access", "b2: load", "boom")
	err := Wrap(KindQuarantined, cause)
	if !errors.Is(err, ErrQuarantined) {
		t.Error("quarantine wrapper does not match ErrQuarantined")
	}
	if !errors.Is(err, ErrTrap) {
		t.Error("quarantine wrapper hides the original trap")
	}
	if TrapOf(err) != TrapOutOfBounds {
		t.Errorf("TrapOf = %v, want out-of-bounds", TrapOf(err))
	}
}

func TestRetryableClassification(t *testing.T) {
	if IsRetryable(nil) {
		t.Error("nil is not retryable")
	}
	if MarkRetryable(nil) != nil {
		t.Error("MarkRetryable(nil) must stay nil")
	}
	plain := errors.New("disk full")
	if IsRetryable(plain) {
		t.Error("unmarked errors are not retryable")
	}
	marked := MarkRetryable(plain)
	if !IsRetryable(marked) {
		t.Error("marked error not classified retryable")
	}
	if !errors.Is(marked, plain) {
		t.Error("marking lost the cause")
	}
	// Marking a typed fault flags it in place, keeping its kind.
	fe := New(KindCacheCorrupt, "torn write")
	if got := MarkRetryable(fe); got != error(fe) {
		t.Error("typed fault should be flagged in place")
	}
	if !IsRetryable(fe) || !errors.Is(fe, ErrCacheCorrupt) {
		t.Error("flagged fault lost class or flag")
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	calls := 0
	err := Retry(nil, 5, nil, func() error {
		calls++
		return New(KindVerify, "permanent")
	})
	if calls != 1 {
		t.Errorf("non-retryable error retried %d times", calls)
	}
	if !errors.Is(err, ErrVerify) {
		t.Errorf("wrong error surfaced: %v", err)
	}
}

func TestRetryBoundedAndEventualSuccess(t *testing.T) {
	calls := 0
	err := Retry(nil, 3, nil, func() error {
		calls++
		if calls < 2 {
			return MarkRetryable(errors.New("transient"))
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Errorf("first-retry success: err=%v calls=%d", err, calls)
	}
	calls = 0
	err = Retry(nil, 3, nil, func() error {
		calls++
		return MarkRetryable(errors.New("always"))
	})
	if calls != 3 {
		t.Errorf("budget of 3 made %d calls", calls)
	}
	if !IsRetryable(err) {
		t.Errorf("exhausted retry must surface the last error, got %v", err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, 10, Backoff(time.Millisecond, 42), func() error {
		calls++
		return MarkRetryable(errors.New("transient"))
	})
	if calls != 1 {
		t.Errorf("canceled context still made %d calls", calls)
	}
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation not classified: %v", err)
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	a, b := Backoff(8*time.Millisecond, 7), Backoff(8*time.Millisecond, 7)
	for i := 0; i < 4; i++ {
		da, db := a(i), b(i)
		if da != db {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, da, db)
		}
		nominal := 8 * time.Millisecond << uint(i)
		if da < nominal/2 || da >= nominal+nominal/2 {
			t.Errorf("attempt %d delay %v outside [%v, %v)", i, da, nominal/2, nominal+nominal/2)
		}
	}
	// Different seeds should not stay in lockstep across the schedule.
	c := Backoff(8*time.Millisecond, 99)
	same := 0
	for i := 0; i < 4; i++ {
		if a(i) == c(i) {
			same++
		}
	}
	if same == 4 {
		t.Error("distinct seeds produced identical schedules")
	}
}

func TestRecoverAttachesStackToTypedPanic(t *testing.T) {
	// The interpreter raises typed faults through panics (e.g. the heap
	// budget); the boundary must preserve the class and capture the stack.
	run := func() (err error) {
		defer Recover(&err, "trace-run")
		panic(New(KindPanic, "typed crash"))
	}
	err := run()
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("typed panic lost its class: %v", err)
	}
	if st := StackOf(err); len(st) == 0 || !strings.Contains(string(st), "fault.TestRecoverAttachesStackToTypedPanic") {
		t.Errorf("stack not captured for typed panic fault: %q", st)
	}
	// Non-panic typed faults keep flowing through without a stack.
	run2 := func() (err error) {
		defer Recover(&err, "trace-run")
		panic(New(KindHeapBudget, "budget"))
	}
	if st := StackOf(run2()); st != nil {
		t.Errorf("heap-budget fault should not grow a stack, got %d bytes", len(st))
	}
}

func TestClassifyTransport(t *testing.T) {
	if ClassifyTransport(nil) != nil {
		t.Fatal("nil did not stay nil")
	}

	// Context expiry is the caller's deadline, not the network.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ClassifyTransport(&url.Error{Op: "Post", URL: "http://x", Err: ctx.Err()})
	if !errors.Is(err, ErrTimeout) || IsRetryable(err) {
		t.Fatalf("canceled-context error classified %v (retryable=%t), want timeout, not retryable",
			err, IsRetryable(err))
	}

	// A refused connection from a dead listener is the canonical transport
	// fault: retryable, classified, cause preserved.
	ln, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		t.Fatal(lerr)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, derr := net.Dial("tcp", addr)
	if derr == nil {
		t.Skip("dial to closed listener unexpectedly succeeded")
	}
	err = ClassifyTransport(derr)
	if !errors.Is(err, ErrTransport) || !IsRetryable(err) {
		t.Fatalf("refused connection classified %v (retryable=%t), want transport, retryable",
			err, IsRetryable(err))
	}
	if ClassOf(err) != "transport" {
		t.Fatalf("ClassOf = %q, want transport", ClassOf(err))
	}

	// A response cut mid-body.
	if err := ClassifyTransport(io.ErrUnexpectedEOF); !errors.Is(err, ErrTransport) {
		t.Fatalf("unexpected EOF classified %v", err)
	}

	// Already-typed faults pass through untouched: a remote 500 carrying a
	// pipeline class must not be reclassified as the network's fault.
	typed := New(KindStepBudget, "remote step budget")
	if got := ClassifyTransport(typed); got != typed {
		t.Fatalf("typed fault was rewrapped: %v", got)
	}

	// Arbitrary application errors pass through.
	plain := errors.New("no such app")
	if got := ClassifyTransport(plain); got != plain {
		t.Fatalf("plain error was rewrapped: %v", got)
	}
}
