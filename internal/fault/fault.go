// Package fault defines the typed error taxonomy of the compile/simulate
// pipeline. Every failure mode a pipeline run can hit — front-end rejection,
// invalid IR, an interpreter trap, an exhausted resource budget, a timeout,
// or a corrupted cache entry — is classified by a Kind, and faults raised
// inside the interpreter carry the IR function and instruction position they
// occurred at. Faults match the package's sentinel errors under errors.Is,
// so callers can branch on the class without string inspection:
//
//	if errors.Is(err, fault.ErrStepBudget) { ... }
//
// The package also provides the panic-to-error recovery used at the three
// pipeline boundaries (compile, access generation, trace run): a crash in
// one run of a collection degrades to an *Error of kind KindPanic instead of
// taking down the process.
package fault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"runtime/debug"
	"syscall"
	"time"
)

// Kind classifies a fault by the pipeline stage or resource that failed.
type Kind uint8

// Fault kinds.
const (
	// KindUnknown is an unclassified failure.
	KindUnknown Kind = iota
	// KindParse is a front-end (lexer, parser, type checker) rejection.
	KindParse
	// KindLower is a failure translating a checked file into IR.
	KindLower
	// KindVerify is an IR verifier rejection.
	KindVerify
	// KindTrap is an interpreter execution fault (see TrapKind).
	KindTrap
	// KindStepBudget is an exhausted interpreter step (fuel) budget.
	KindStepBudget
	// KindHeapBudget is an exhausted simulated-heap byte budget.
	KindHeapBudget
	// KindTimeout is a context cancellation or deadline expiry.
	KindTimeout
	// KindCacheCorrupt is a trace-cache entry that failed validation.
	KindCacheCorrupt
	// KindPanic is a recovered panic from a pipeline stage.
	KindPanic
	// KindDegraded marks work that completed on a lower rung of the
	// degradation ladder: a generation strategy that was rejected in favor
	// of the next one, or a run that finished with quarantined task types.
	KindDegraded
	// KindQuarantined marks a task type whose access variant was disabled
	// by the runtime supervisor for the rest of the workload; the wrapped
	// cause is the access-phase fault that triggered the quarantine.
	KindQuarantined
	// KindTransport is a network-level failure talking to a remote daed
	// node: a refused or reset connection, an unexpectedly closed response,
	// a broken proxy. Transport faults are retryable by construction — the
	// request never produced a result, so reissuing it (to the same node or
	// a replica) is always safe.
	KindTransport
)

// String returns the short class name used in failure summaries.
func (k Kind) String() string {
	switch k {
	case KindParse:
		return "parse"
	case KindLower:
		return "lower"
	case KindVerify:
		return "verify"
	case KindTrap:
		return "trap"
	case KindStepBudget:
		return "step-budget"
	case KindHeapBudget:
		return "heap-budget"
	case KindTimeout:
		return "timeout"
	case KindCacheCorrupt:
		return "cache-corrupt"
	case KindPanic:
		return "panic"
	case KindDegraded:
		return "degraded"
	case KindQuarantined:
		return "quarantined"
	case KindTransport:
		return "transport"
	}
	return "unknown"
}

// TrapKind identifies the execution fault of a KindTrap error.
type TrapKind uint8

// Trap kinds.
const (
	// TrapNone marks a non-trap fault.
	TrapNone TrapKind = iota
	// TrapDivByZero is an integer division or remainder by zero.
	TrapDivByZero
	// TrapOutOfBounds is a load or store outside its segment.
	TrapOutOfBounds
	// TrapNilDeref is a load or store through a nil segment pointer.
	TrapNilDeref
)

// String returns a readable trap name.
func (t TrapKind) String() string {
	switch t {
	case TrapDivByZero:
		return "div-by-zero"
	case TrapOutOfBounds:
		return "out-of-bounds"
	case TrapNilDeref:
		return "nil-deref"
	}
	return "none"
}

// Sentinels: one per Kind, matched by (*Error).Is. They carry no context
// themselves; construct an *Error (or wrap a sentinel) to report a fault.
var (
	ErrParse        = errors.New("fault: parse error")
	ErrLower        = errors.New("fault: lowering error")
	ErrVerify       = errors.New("fault: IR verification error")
	ErrTrap         = errors.New("fault: execution trap")
	ErrStepBudget   = errors.New("fault: step budget exhausted")
	ErrHeapBudget   = errors.New("fault: heap budget exhausted")
	ErrTimeout      = errors.New("fault: timed out")
	ErrCacheCorrupt = errors.New("fault: corrupt cache entry")
	ErrPanic        = errors.New("fault: recovered panic")
	ErrDegraded     = errors.New("fault: completed degraded")
	ErrQuarantined  = errors.New("fault: access variant quarantined")
	ErrTransport    = errors.New("fault: transport error")
)

func sentinel(k Kind) error {
	switch k {
	case KindParse:
		return ErrParse
	case KindLower:
		return ErrLower
	case KindVerify:
		return ErrVerify
	case KindTrap:
		return ErrTrap
	case KindStepBudget:
		return ErrStepBudget
	case KindHeapBudget:
		return ErrHeapBudget
	case KindTimeout:
		return ErrTimeout
	case KindCacheCorrupt:
		return ErrCacheCorrupt
	case KindPanic:
		return ErrPanic
	case KindDegraded:
		return ErrDegraded
	case KindQuarantined:
		return ErrQuarantined
	case KindTransport:
		return ErrTransport
	}
	return nil
}

// Error is one classified pipeline fault.
type Error struct {
	// Kind is the fault class.
	Kind Kind
	// Trap refines KindTrap faults.
	Trap TrapKind
	// Func is the IR function (without @) the fault occurred in, when known.
	Func string
	// Pos locates the faulting IR instruction (block and instruction text),
	// when known.
	Pos string
	// Msg is the human-readable description.
	Msg string
	// Err is the wrapped cause, if any.
	Err error
	// Stack is the panic stack for KindPanic faults.
	Stack []byte
	// Retryable marks transient infrastructure faults (cache I/O, a racing
	// rename) that a bounded retry may clear; see Retry.
	Retryable bool
}

// Error implements error.
func (e *Error) Error() string {
	s := "fault[" + e.Kind.String()
	if e.Kind == KindTrap && e.Trap != TrapNone {
		s += "/" + e.Trap.String()
	}
	s += "]"
	if e.Func != "" {
		s += " @" + e.Func
	}
	if e.Pos != "" {
		s += " at " + e.Pos
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the cause for errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the sentinel of e.Kind, so errors.Is(err, fault.ErrTrap) holds
// for every trap regardless of its message or position.
func (e *Error) Is(target error) bool { return target == sentinel(e.Kind) }

// New returns a fault of kind k with a formatted message.
func New(k Kind, format string, args ...any) *Error {
	return &Error{Kind: k, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies an existing error without losing it: the result matches
// both sentinel(k) and everything err already matched. A nil err yields nil.
func Wrap(k Kind, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Kind: k, Err: err}
}

// NewTrap returns an execution-trap fault.
func NewTrap(t TrapKind, fn, pos, format string, args ...any) *Error {
	return &Error{Kind: KindTrap, Trap: t, Func: fn, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ClassOf returns the short class name of err: the Kind of the outermost
// *Error in its chain, or "error" for unclassified errors and "" for nil.
func ClassOf(err error) string {
	if err == nil {
		return ""
	}
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Kind.String()
	}
	return "error"
}

// TrapOf returns the TrapKind of err: the first fault in the chain carrying
// one, so classification wrappers (e.g. KindQuarantined around a trap) stay
// transparent. TrapNone when err carries no trap.
func TrapOf(err error) TrapKind {
	for err != nil {
		if fe, ok := err.(*Error); ok && fe.Trap != TrapNone {
			return fe.Trap
		}
		err = errors.Unwrap(err)
	}
	return TrapNone
}

// Recover converts an in-flight panic into a KindPanic fault stored in *errp,
// preserving an already-typed *Error panic value (the interpreter's heap
// budget check raises one through APIs that cannot return an error). Use at a
// pipeline boundary:
//
//	func stage() (err error) {
//		defer fault.Recover(&err, "compile")
//		...
//	}
//
// The boundary name appears in the fault message; an existing error in *errp
// is only replaced when a panic actually occurred.
func Recover(errp *error, boundary string) {
	r := recover()
	if r == nil {
		return
	}
	if fe, ok := r.(*Error); ok {
		if fe.Kind == KindPanic && fe.Stack == nil {
			// A typed panic fault re-raised across a boundary: keep the
			// classification but capture the stack it unwound through, so
			// verbose failure reports can show where it came from.
			fe.Stack = debug.Stack()
		}
		*errp = fe
		return
	}
	*errp = &Error{
		Kind:  KindPanic,
		Msg:   fmt.Sprintf("%s: panic: %v", boundary, r),
		Stack: debug.Stack(),
	}
}

// StackOf returns the captured panic stack of err, or nil when its chain
// carries none.
func StackOf(err error) []byte {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Stack
	}
	return nil
}

// MarkRetryable classifies err as a transient infrastructure fault worth a
// bounded retry. An already-typed *Error is flagged in place; anything else
// is wrapped in a KindUnknown fault with the flag set. A nil err yields nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		fe.Retryable = true
		return err
	}
	return &Error{Kind: KindUnknown, Err: err, Retryable: true}
}

// IsRetryable reports whether err's chain carries a fault flagged retryable.
func IsRetryable(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Retryable
}

// Transport wraps err as a retryable KindTransport fault: the request never
// produced a result, so a bounded retry (against the same node or a replica)
// is always safe. A nil err yields nil.
func Transport(err error) error {
	if err == nil {
		return nil
	}
	return &Error{Kind: KindTransport, Err: err, Retryable: true}
}

// ClassifyTransport classifies an error returned by a network client call.
// Context expiry anywhere in the chain becomes a KindTimeout fault (the
// caller's deadline, not the network, ended the request — retrying under the
// same dead context is pointless); network-level failures — refused or reset
// connections, responses cut mid-body, any net.Error — become retryable
// KindTransport faults; anything else (including an already-typed *Error)
// passes through unchanged. A nil err yields nil.
func ClassifyTransport(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Wrap(KindTimeout, err)
	}
	var fe *Error
	if errors.As(err, &fe) {
		return err
	}
	var ne net.Error
	if errors.As(err, &ne) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return Transport(err)
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return Transport(err)
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		// url.Error wraps every transport-layer failure of net/http; by the
		// time we are here it is not a context expiry, so treat it as the
		// network misbehaving.
		return Transport(err)
	}
	return err
}

// Backoff returns the retry delay schedule used by Retry: exponential in the
// attempt number, starting at base, with deterministic jitter derived from
// seed so that two callers retrying the same contended resource (e.g. two
// workers writing the same cache entry) do not stay in lockstep. The jitter
// spreads each delay over [0.5, 1.5)× its nominal value.
func Backoff(base time.Duration, seed uint64) func(attempt int) time.Duration {
	state := seed | 1 // xorshift must not start at zero
	return func(attempt int) time.Duration {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		d := base << uint(attempt) // 1x, 2x, 4x, ...
		jitter := time.Duration(state % uint64(d))
		return d/2 + jitter
	}
}

// Retry runs fn up to attempts times, sleeping backoff(i) between tries. It
// stops early — returning the last error — as soon as fn fails with an
// error that is not IsRetryable, or when ctx is done (the context error is
// reported as a KindTimeout fault wrapping the last failure). A nil backoff
// retries immediately.
func Retry(ctx context.Context, attempts int, backoff func(int) time.Duration, fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil || !IsRetryable(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			return &Error{Kind: KindTimeout, Msg: "retry aborted", Err: errors.Join(ctx.Err(), err)}
		}
		if backoff == nil {
			continue
		}
		t := time.NewTimer(backoff(i))
		if ctx == nil {
			<-t.C
			continue
		}
		select {
		case <-ctx.Done():
			t.Stop()
			return &Error{Kind: KindTimeout, Msg: "retry aborted", Err: errors.Join(ctx.Err(), err)}
		case <-t.C:
		}
	}
	return err
}
