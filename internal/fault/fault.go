// Package fault defines the typed error taxonomy of the compile/simulate
// pipeline. Every failure mode a pipeline run can hit — front-end rejection,
// invalid IR, an interpreter trap, an exhausted resource budget, a timeout,
// or a corrupted cache entry — is classified by a Kind, and faults raised
// inside the interpreter carry the IR function and instruction position they
// occurred at. Faults match the package's sentinel errors under errors.Is,
// so callers can branch on the class without string inspection:
//
//	if errors.Is(err, fault.ErrStepBudget) { ... }
//
// The package also provides the panic-to-error recovery used at the three
// pipeline boundaries (compile, access generation, trace run): a crash in
// one run of a collection degrades to an *Error of kind KindPanic instead of
// taking down the process.
package fault

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Kind classifies a fault by the pipeline stage or resource that failed.
type Kind uint8

// Fault kinds.
const (
	// KindUnknown is an unclassified failure.
	KindUnknown Kind = iota
	// KindParse is a front-end (lexer, parser, type checker) rejection.
	KindParse
	// KindLower is a failure translating a checked file into IR.
	KindLower
	// KindVerify is an IR verifier rejection.
	KindVerify
	// KindTrap is an interpreter execution fault (see TrapKind).
	KindTrap
	// KindStepBudget is an exhausted interpreter step (fuel) budget.
	KindStepBudget
	// KindHeapBudget is an exhausted simulated-heap byte budget.
	KindHeapBudget
	// KindTimeout is a context cancellation or deadline expiry.
	KindTimeout
	// KindCacheCorrupt is a trace-cache entry that failed validation.
	KindCacheCorrupt
	// KindPanic is a recovered panic from a pipeline stage.
	KindPanic
)

// String returns the short class name used in failure summaries.
func (k Kind) String() string {
	switch k {
	case KindParse:
		return "parse"
	case KindLower:
		return "lower"
	case KindVerify:
		return "verify"
	case KindTrap:
		return "trap"
	case KindStepBudget:
		return "step-budget"
	case KindHeapBudget:
		return "heap-budget"
	case KindTimeout:
		return "timeout"
	case KindCacheCorrupt:
		return "cache-corrupt"
	case KindPanic:
		return "panic"
	}
	return "unknown"
}

// TrapKind identifies the execution fault of a KindTrap error.
type TrapKind uint8

// Trap kinds.
const (
	// TrapNone marks a non-trap fault.
	TrapNone TrapKind = iota
	// TrapDivByZero is an integer division or remainder by zero.
	TrapDivByZero
	// TrapOutOfBounds is a load or store outside its segment.
	TrapOutOfBounds
	// TrapNilDeref is a load or store through a nil segment pointer.
	TrapNilDeref
)

// String returns a readable trap name.
func (t TrapKind) String() string {
	switch t {
	case TrapDivByZero:
		return "div-by-zero"
	case TrapOutOfBounds:
		return "out-of-bounds"
	case TrapNilDeref:
		return "nil-deref"
	}
	return "none"
}

// Sentinels: one per Kind, matched by (*Error).Is. They carry no context
// themselves; construct an *Error (or wrap a sentinel) to report a fault.
var (
	ErrParse        = errors.New("fault: parse error")
	ErrLower        = errors.New("fault: lowering error")
	ErrVerify       = errors.New("fault: IR verification error")
	ErrTrap         = errors.New("fault: execution trap")
	ErrStepBudget   = errors.New("fault: step budget exhausted")
	ErrHeapBudget   = errors.New("fault: heap budget exhausted")
	ErrTimeout      = errors.New("fault: timed out")
	ErrCacheCorrupt = errors.New("fault: corrupt cache entry")
	ErrPanic        = errors.New("fault: recovered panic")
)

func sentinel(k Kind) error {
	switch k {
	case KindParse:
		return ErrParse
	case KindLower:
		return ErrLower
	case KindVerify:
		return ErrVerify
	case KindTrap:
		return ErrTrap
	case KindStepBudget:
		return ErrStepBudget
	case KindHeapBudget:
		return ErrHeapBudget
	case KindTimeout:
		return ErrTimeout
	case KindCacheCorrupt:
		return ErrCacheCorrupt
	case KindPanic:
		return ErrPanic
	}
	return nil
}

// Error is one classified pipeline fault.
type Error struct {
	// Kind is the fault class.
	Kind Kind
	// Trap refines KindTrap faults.
	Trap TrapKind
	// Func is the IR function (without @) the fault occurred in, when known.
	Func string
	// Pos locates the faulting IR instruction (block and instruction text),
	// when known.
	Pos string
	// Msg is the human-readable description.
	Msg string
	// Err is the wrapped cause, if any.
	Err error
	// Stack is the panic stack for KindPanic faults.
	Stack []byte
}

// Error implements error.
func (e *Error) Error() string {
	s := "fault[" + e.Kind.String()
	if e.Kind == KindTrap && e.Trap != TrapNone {
		s += "/" + e.Trap.String()
	}
	s += "]"
	if e.Func != "" {
		s += " @" + e.Func
	}
	if e.Pos != "" {
		s += " at " + e.Pos
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the cause for errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the sentinel of e.Kind, so errors.Is(err, fault.ErrTrap) holds
// for every trap regardless of its message or position.
func (e *Error) Is(target error) bool { return target == sentinel(e.Kind) }

// New returns a fault of kind k with a formatted message.
func New(k Kind, format string, args ...any) *Error {
	return &Error{Kind: k, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies an existing error without losing it: the result matches
// both sentinel(k) and everything err already matched. A nil err yields nil.
func Wrap(k Kind, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Kind: k, Err: err}
}

// NewTrap returns an execution-trap fault.
func NewTrap(t TrapKind, fn, pos, format string, args ...any) *Error {
	return &Error{Kind: KindTrap, Trap: t, Func: fn, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ClassOf returns the short class name of err: the Kind of the outermost
// *Error in its chain, or "error" for unclassified errors and "" for nil.
func ClassOf(err error) string {
	if err == nil {
		return ""
	}
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Kind.String()
	}
	return "error"
}

// TrapOf returns the TrapKind of err (TrapNone when err carries no trap).
func TrapOf(err error) TrapKind {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Trap
	}
	return TrapNone
}

// Recover converts an in-flight panic into a KindPanic fault stored in *errp,
// preserving an already-typed *Error panic value (the interpreter's heap
// budget check raises one through APIs that cannot return an error). Use at a
// pipeline boundary:
//
//	func stage() (err error) {
//		defer fault.Recover(&err, "compile")
//		...
//	}
//
// The boundary name appears in the fault message; an existing error in *errp
// is only replaced when a panic actually occurred.
func Recover(errp *error, boundary string) {
	r := recover()
	if r == nil {
		return
	}
	if fe, ok := r.(*Error); ok {
		*errp = fe
		return
	}
	*errp = &Error{
		Kind:  KindPanic,
		Msg:   fmt.Sprintf("%s: panic: %v", boundary, r),
		Stack: debug.Stack(),
	}
}
