// Package inject is the deterministic fault-injection harness for the
// compile/simulate pipeline. Tests install an Injector's Hook into
// eval.CollectOptions; the pipeline consults the hook at each boundary
// (compile, access generation, trace run) of every (app, run) pair, and
// matching rules fire a typed fault — an error, a panic, a trap, an
// exhausted budget — exactly where a real one would surface. The harness
// also corrupts on-disk trace-cache entries to exercise the checksum path.
//
// Rules are matched in order and fire deterministically: the same rule set
// over the same collection produces the same faults regardless of worker
// count, because matching keys only on (site, app, kind), never on timing.
package inject

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dae/internal/fault"
)

// Site identifies a pipeline boundary where faults can be injected.
type Site string

// Injection sites, in pipeline order.
const (
	// SiteCompile guards benchmark construction: TaskC parse, lowering,
	// optimization, access-version generation, and heap allocation.
	SiteCompile Site = "compile"
	// SiteAccessGen guards profile-guided access refinement.
	SiteAccessGen Site = "access-gen"
	// SiteTraceRun guards workload tracing and output verification.
	SiteTraceRun Site = "trace-run"
)

// Hook is consulted by the pipeline at each site before the real stage
// runs. Returning a non-nil error fails the stage with that error; a hook
// may instead panic to simulate a stage crash — the pipeline boundary
// recovery converts it to a fault.ErrPanic error. A nil Hook disables
// injection entirely.
type Hook func(site Site, app, kind string) error

// Mode selects the shape of an injected fault.
type Mode uint8

// Injection modes.
const (
	// ModeError fails the stage with a plain (unclassified) error.
	ModeError Mode = iota
	// ModePanic crashes the stage; the boundary recovers it as ErrPanic.
	ModePanic
	// ModeTrap fails the stage with a fault.ErrTrap of the rule's TrapKind.
	ModeTrap
	// ModeStepBudget fails the stage with fault.ErrStepBudget.
	ModeStepBudget
	// ModeHeapBudget fails the stage with fault.ErrHeapBudget.
	ModeHeapBudget
	// ModeTimeout fails the stage with fault.ErrTimeout.
	ModeTimeout
)

// String returns a readable mode name.
func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeTrap:
		return "trap"
	case ModeStepBudget:
		return "step-budget"
	case ModeHeapBudget:
		return "heap-budget"
	case ModeTimeout:
		return "timeout"
	}
	return "error"
}

// Rule fires a fault at every pipeline stage it matches. Empty selector
// fields match anything.
type Rule struct {
	// Site selects the boundary ("" = any).
	Site Site
	// App selects the benchmark by name ("" = any).
	App string
	// Kind selects the run kind: "coupled", "manual-dae", or
	// "compiler-dae" ("" = any).
	Kind string
	// Mode is the fault shape.
	Mode Mode
	// Trap refines ModeTrap.
	Trap fault.TrapKind
}

func (r Rule) matches(site Site, app, kind string) bool {
	return (r.Site == "" || r.Site == site) &&
		(r.App == "" || r.App == app) &&
		(r.Kind == "" || r.Kind == kind)
}

// Injector is a race-safe rule set that records every fault it fires.
type Injector struct {
	rules []Rule
	mu    sync.Mutex
	fired []string
}

// New returns an injector over rules.
func New(rules ...Rule) *Injector { return &Injector{rules: rules} }

// Hook returns the pipeline hook of the injector.
func (in *Injector) Hook() Hook {
	return func(site Site, app, kind string) error {
		for _, r := range in.rules {
			if !r.matches(site, app, kind) {
				continue
			}
			in.record(site, app, kind, r.Mode)
			switch r.Mode {
			case ModePanic:
				panic(fmt.Sprintf("inject: %s/%s/%s", site, app, kind))
			case ModeTrap:
				return fault.NewTrap(r.Trap, app, "",
					"inject: trap at %s", site)
			case ModeStepBudget:
				return fault.New(fault.KindStepBudget, "inject: budget at %s/%s", site, app)
			case ModeHeapBudget:
				return fault.New(fault.KindHeapBudget, "inject: budget at %s/%s", site, app)
			case ModeTimeout:
				return fault.New(fault.KindTimeout, "inject: timeout at %s/%s", site, app)
			default:
				return fmt.Errorf("inject: error at %s/%s/%s", site, app, kind)
			}
		}
		return nil
	}
}

func (in *Injector) record(site Site, app, kind string, mode Mode) {
	in.mu.Lock()
	in.fired = append(in.fired, fmt.Sprintf("%s/%s/%s:%s", site, app, kind, mode))
	in.mu.Unlock()
}

// Fired returns the injected faults in sorted (deterministic) order; the
// raw firing order depends on worker scheduling and is deliberately not
// exposed.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	out := append([]string(nil), in.fired...)
	in.mu.Unlock()
	sort.Strings(out)
	return out
}

// CorruptCacheDir damages every trace-cache entry under dir: with truncate
// set, files are cut to half length (a torn write); otherwise one content
// byte is flipped (bit rot). It returns the number of damaged files. The
// cache's content checksum must turn either form into a clean miss.
func CorruptCacheDir(dir string, truncate bool) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return n, err
		}
		if len(b) == 0 {
			continue
		}
		if truncate {
			b = b[:len(b)/2]
		} else {
			// Flip a byte in the middle of the payload, away from the JSON
			// envelope's framing so the file stays superficially plausible.
			b[len(b)/2] ^= 0x5a
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
