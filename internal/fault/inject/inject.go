// Package inject is the deterministic fault-injection harness for the
// compile/simulate pipeline. Tests install an Injector's Hook into
// eval.CollectOptions; the pipeline consults the hook at each boundary
// (compile, access generation, trace run) of every (app, run) pair, and
// matching rules fire a typed fault — an error, a panic, a trap, an
// exhausted budget — exactly where a real one would surface. The harness
// also corrupts on-disk trace-cache entries to exercise the checksum path.
//
// Rules are matched in order and fire deterministically: the same rule set
// over the same collection produces the same faults regardless of worker
// count, because matching keys only on (site, app, kind), never on timing.
package inject

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dae/internal/fault"
)

// Site identifies a pipeline boundary where faults can be injected.
type Site string

// Injection sites, in pipeline order.
const (
	// SiteCompile guards benchmark construction: TaskC parse, lowering,
	// optimization, access-version generation, and heap allocation.
	SiteCompile Site = "compile"
	// SiteAccessGen guards profile-guided access refinement.
	SiteAccessGen Site = "access-gen"
	// SiteTraceRun guards workload tracing and output verification.
	SiteTraceRun Site = "trace-run"
	// SiteAccessPhase fires inside the runtime, immediately before one
	// task's access phase runs — the supervisor must degrade it.
	SiteAccessPhase Site = "access-phase"
	// SiteExecPhase fires inside the runtime, immediately before one task's
	// execute phase runs — the supervisor must surface it, never mask it.
	SiteExecPhase Site = "execute-phase"
)

// Hook is consulted by the pipeline at each site before the real stage
// runs. Returning a non-nil error fails the stage with that error; a hook
// may instead panic to simulate a stage crash — the pipeline boundary
// recovery converts it to a fault.ErrPanic error. A nil Hook disables
// injection entirely.
type Hook func(site Site, app, kind string) error

// Mode selects the shape of an injected fault.
type Mode uint8

// Injection modes.
const (
	// ModeError fails the stage with a plain (unclassified) error.
	ModeError Mode = iota
	// ModePanic crashes the stage; the boundary recovers it as ErrPanic.
	ModePanic
	// ModeTrap fails the stage with a fault.ErrTrap of the rule's TrapKind.
	ModeTrap
	// ModeStepBudget fails the stage with fault.ErrStepBudget.
	ModeStepBudget
	// ModeHeapBudget fails the stage with fault.ErrHeapBudget.
	ModeHeapBudget
	// ModeTimeout fails the stage with fault.ErrTimeout.
	ModeTimeout
)

// String returns a readable mode name.
func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeTrap:
		return "trap"
	case ModeStepBudget:
		return "step-budget"
	case ModeHeapBudget:
		return "heap-budget"
	case ModeTimeout:
		return "timeout"
	}
	return "error"
}

// Rule fires a fault at every pipeline stage it matches. Empty selector
// fields match anything.
type Rule struct {
	// Site selects the boundary ("" = any).
	Site Site
	// App selects the benchmark by name ("" = any).
	App string
	// Kind selects the run kind: "coupled", "manual-dae", or
	// "compiler-dae" ("" = any).
	Kind string
	// Task selects the task type by name for the phase sites ("" = any);
	// pipeline-boundary sites ignore it.
	Task string
	// Mode is the fault shape.
	Mode Mode
	// Trap refines ModeTrap.
	Trap fault.TrapKind
	// Once limits the rule to its first firing; later matches pass clean.
	// This is how a test injects "a fault in 2 of the 21 runs" without also
	// failing the replays that supervision triggers.
	Once bool
}

func (r Rule) matches(site Site, app, kind, task string) bool {
	return (r.Site == "" || r.Site == site) &&
		(r.App == "" || r.App == app) &&
		(r.Kind == "" || r.Kind == kind) &&
		(r.Task == "" || r.Task == task)
}

// Injector is a race-safe rule set that records every fault it fires.
type Injector struct {
	rules []Rule
	mu    sync.Mutex
	fired []string
	spent []bool // per-rule: a Once rule that already fired
}

// New returns an injector over rules.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, spent: make([]bool, len(rules))}
}

// fire finds the first live rule matching the coordinates, records it, and
// raises its fault (returning the error form, or panicking for ModePanic).
// A nil return means no rule matched.
func (in *Injector) fire(site Site, app, kind, task string) error {
	in.mu.Lock()
	var rule *Rule
	for i := range in.rules {
		r := &in.rules[i]
		if in.spent[i] || !r.matches(site, app, kind, task) {
			continue
		}
		if r.Once {
			in.spent[i] = true
		}
		rule = r
		break
	}
	if rule != nil {
		at := fmt.Sprintf("%s/%s/%s", site, app, kind)
		if task != "" {
			at += "/" + task
		}
		in.fired = append(in.fired, at+":"+rule.Mode.String())
	}
	in.mu.Unlock()
	if rule == nil {
		return nil
	}
	switch rule.Mode {
	case ModePanic:
		panic(fmt.Sprintf("inject: %s/%s/%s", site, app, kind))
	case ModeTrap:
		return fault.NewTrap(rule.Trap, app, "",
			"inject: trap at %s", site)
	case ModeStepBudget:
		return fault.New(fault.KindStepBudget, "inject: budget at %s/%s", site, app)
	case ModeHeapBudget:
		return fault.New(fault.KindHeapBudget, "inject: budget at %s/%s", site, app)
	case ModeTimeout:
		return fault.New(fault.KindTimeout, "inject: timeout at %s/%s", site, app)
	default:
		return fmt.Errorf("inject: error at %s/%s/%s", site, app, kind)
	}
}

// Hook returns the pipeline-boundary hook of the injector. Phase-site rules
// never fire here; they are served by PhaseFunc.
func (in *Injector) Hook() Hook {
	return func(site Site, app, kind string) error {
		switch site {
		case SiteAccessPhase, SiteExecPhase:
			return nil
		}
		return in.fire(site, app, kind, "")
	}
}

// PhaseFunc returns the per-task-phase hook the runtime supervisor consults
// (wired through eval.CollectOptions.InjectPhase): only SiteAccessPhase and
// SiteExecPhase rules fire here.
func (in *Injector) PhaseFunc() func(app, kind, task string, access bool) error {
	return func(app, kind, task string, access bool) error {
		site := SiteExecPhase
		if access {
			site = SiteAccessPhase
		}
		return in.fire(site, app, kind, task)
	}
}

// Fired returns the injected faults in sorted (deterministic) order; the
// raw firing order depends on worker scheduling and is deliberately not
// exposed.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	out := append([]string(nil), in.fired...)
	in.mu.Unlock()
	sort.Strings(out)
	return out
}

// ParseRules parses the CLI rule syntax of the -inject flag: rules are
// separated by ';', each rule is "site,app,kind,task,mode[,trap]" with empty
// fields matching anything. A mode suffixed "!" fires only once. Examples:
//
//	access-phase,LU,compiler-dae,,trap          every LU access phase traps
//	trace-run,FFT,,,panic                       all FFT trace runs crash
//	execute-phase,,,diag,step-budget!           first diag execute phase only
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		f := strings.Split(raw, ",")
		if len(f) < 5 || len(f) > 6 {
			return nil, fmt.Errorf("inject: rule %q: want site,app,kind,task,mode[,trap]", raw)
		}
		for i := range f {
			f[i] = strings.TrimSpace(f[i])
		}
		r := Rule{Site: Site(f[0]), App: f[1], Kind: f[2], Task: f[3]}
		switch r.Site {
		case "", SiteCompile, SiteAccessGen, SiteTraceRun, SiteAccessPhase, SiteExecPhase:
		default:
			return nil, fmt.Errorf("inject: rule %q: unknown site %q", raw, f[0])
		}
		mode := f[4]
		if strings.HasSuffix(mode, "!") {
			r.Once = true
			mode = strings.TrimSuffix(mode, "!")
		}
		switch mode {
		case "error":
			r.Mode = ModeError
		case "panic":
			r.Mode = ModePanic
		case "trap":
			r.Mode = ModeTrap
			r.Trap = fault.TrapOutOfBounds
		case "step-budget":
			r.Mode = ModeStepBudget
		case "heap-budget":
			r.Mode = ModeHeapBudget
		case "timeout":
			r.Mode = ModeTimeout
		default:
			return nil, fmt.Errorf("inject: rule %q: unknown mode %q", raw, mode)
		}
		if len(f) == 6 {
			if r.Mode != ModeTrap {
				return nil, fmt.Errorf("inject: rule %q: trap kind given for non-trap mode", raw)
			}
			switch f[5] {
			case "div-by-zero":
				r.Trap = fault.TrapDivByZero
			case "out-of-bounds":
				r.Trap = fault.TrapOutOfBounds
			case "nil-deref":
				r.Trap = fault.TrapNilDeref
			default:
				return nil, fmt.Errorf("inject: rule %q: unknown trap kind %q", raw, f[5])
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// CorruptCacheDir damages every trace-cache entry under dir: with truncate
// set, files are cut to half length (a torn write); otherwise one content
// byte is flipped (bit rot). It returns the number of damaged files. The
// cache's content checksum must turn either form into a clean miss.
func CorruptCacheDir(dir string, truncate bool) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return n, err
		}
		if len(b) == 0 {
			continue
		}
		if truncate {
			b = b[:len(b)/2]
		} else {
			// Flip a byte in the middle of the payload, away from the JSON
			// envelope's framing so the file stays superficially plausible.
			b[len(b)/2] ^= 0x5a
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
