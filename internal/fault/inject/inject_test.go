package inject

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dae/internal/fault"
)

func TestRuleMatching(t *testing.T) {
	in := New(
		Rule{Site: SiteCompile, App: "LU", Mode: ModeError},
		Rule{Site: SiteTraceRun, Kind: "coupled", Mode: ModeError},
	)
	hook := in.Hook()
	cases := []struct {
		site      Site
		app, kind string
		want      bool
	}{
		{SiteCompile, "LU", "coupled", true},       // rule 0: any kind
		{SiteCompile, "LU", "compiler-dae", true},  // rule 0
		{SiteCompile, "FFT", "coupled", false},     // wrong app, wrong site for rule 1
		{SiteTraceRun, "FFT", "coupled", true},     // rule 1: any app
		{SiteTraceRun, "FFT", "manual-dae", false}, // wrong kind
		{SiteAccessGen, "LU", "coupled", false},    // no rule for this site
	}
	for _, c := range cases {
		err := hook(c.site, c.app, c.kind)
		if got := err != nil; got != c.want {
			t.Errorf("hook(%s, %s, %s) fired=%v, want %v", c.site, c.app, c.kind, got, c.want)
		}
	}
}

func TestModesProduceTypedFaults(t *testing.T) {
	cases := []struct {
		mode Mode
		want error
	}{
		{ModeStepBudget, fault.ErrStepBudget},
		{ModeHeapBudget, fault.ErrHeapBudget},
		{ModeTimeout, fault.ErrTimeout},
		{ModeTrap, fault.ErrTrap},
	}
	for _, c := range cases {
		hook := New(Rule{Mode: c.mode}).Hook()
		err := hook(SiteTraceRun, "LU", "coupled")
		if !errors.Is(err, c.want) {
			t.Errorf("mode %v: %v does not match its fault sentinel", c.mode, err)
		}
	}

	hook := New(Rule{Mode: ModeTrap, Trap: fault.TrapOutOfBounds}).Hook()
	if tr := fault.TrapOf(hook(SiteTraceRun, "LU", "coupled")); tr != fault.TrapOutOfBounds {
		t.Errorf("trap kind = %v, want out-of-bounds", tr)
	}
}

func TestModePanicPanics(t *testing.T) {
	hook := New(Rule{Mode: ModePanic}).Hook()
	defer func() {
		if recover() == nil {
			t.Error("ModePanic hook did not panic")
		}
	}()
	hook(SiteCompile, "LU", "coupled")
}

func TestFiredIsSortedAndDeduplicatedLog(t *testing.T) {
	in := New(Rule{Mode: ModeError})
	hook := in.Hook()
	// Fire out of order, as a racy worker pool would.
	hook(SiteTraceRun, "LU", "coupled")
	hook(SiteCompile, "FFT", "manual-dae")
	hook(SiteCompile, "CG", "coupled")
	got := in.Fired()
	want := append([]string(nil), got...)
	if !sortedStrings(want) {
		t.Errorf("Fired() not sorted: %v", got)
	}
	if len(got) != 3 {
		t.Errorf("Fired() has %d entries, want 3: %v", len(got), got)
	}
	// A second call returns the same snapshot.
	if again := in.Fired(); !reflect.DeepEqual(again, got) {
		t.Errorf("Fired() not stable: %v vs %v", again, got)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestCorruptCacheDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.json", "b.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(`{"version":2,"key":"k","sum":"s"}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := CorruptCacheDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("corrupted %d files, want 2", n)
	}
	for _, name := range []string{"a.json", "b.json"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) >= len(`{"version":2,"key":"k","sum":"s"}`) {
			t.Errorf("%s not truncated (%d bytes)", name, len(b))
		}
	}
	// Bit-flip mode keeps the length but changes content.
	orig := []byte(`{"version":2,"key":"k","sum":"s"}`)
	p := filepath.Join(dir, "c.json")
	if err := os.WriteFile(p, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CorruptCacheDir(dir, false); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(orig) || reflect.DeepEqual(b, orig) {
		t.Errorf("bit-flip mode: len %d→%d, equal=%v", len(orig), len(b), reflect.DeepEqual(b, orig))
	}
}

func TestPhaseFuncFiresOnlyPhaseSites(t *testing.T) {
	in := New(
		Rule{Site: SiteAccessPhase, App: "LU", Task: "diag", Mode: ModeTrap, Trap: fault.TrapNilDeref},
		Rule{Site: SiteExecPhase, App: "LU", Mode: ModeStepBudget},
		Rule{Site: SiteTraceRun, App: "LU", Mode: ModeError},
	)
	phase := in.PhaseFunc()
	// Access phase of the selected task traps; other tasks pass.
	if err := phase("LU", "compiler-dae", "diag", true); !errors.Is(err, fault.ErrTrap) {
		t.Errorf("access-phase rule did not fire: %v", err)
	}
	if err := phase("LU", "compiler-dae", "row", true); err != nil {
		t.Errorf("unselected task faulted: %v", err)
	}
	// Execute phases match the execute rule (any task).
	if err := phase("LU", "compiler-dae", "row", false); !errors.Is(err, fault.ErrStepBudget) {
		t.Errorf("execute-phase rule did not fire: %v", err)
	}
	// The boundary hook must not serve phase rules, and vice versa.
	hook := in.Hook()
	if err := hook(SiteAccessPhase, "LU", "compiler-dae"); err != nil {
		t.Errorf("boundary hook served a phase site: %v", err)
	}
	if err := hook(SiteTraceRun, "LU", "compiler-dae"); err == nil {
		t.Error("boundary rule did not fire through the hook")
	}
	if got := len(in.Fired()); got != 3 {
		t.Errorf("fired %d, want 3: %v", got, in.Fired())
	}
}

func TestOnceRuleFiresOnce(t *testing.T) {
	in := New(Rule{Site: SiteAccessPhase, Task: "diag", Mode: ModePanic, Once: true})
	phase := in.PhaseFunc()
	mustPanic := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		phase("LU", "compiler-dae", "diag", true)
		return false
	}
	if !mustPanic() {
		t.Fatal("first match did not panic")
	}
	if err := phase("LU", "compiler-dae", "diag", true); err != nil {
		t.Errorf("once rule fired twice: %v", err)
	}
	if got := len(in.Fired()); got != 1 {
		t.Errorf("fired %d, want 1", got)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("access-phase,LU,compiler-dae,,trap; trace-run,FFT,,,panic; execute-phase,,,diag,step-budget!; compile,,coupled,,trap,nil-deref")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Site: SiteAccessPhase, App: "LU", Kind: "compiler-dae", Mode: ModeTrap, Trap: fault.TrapOutOfBounds},
		{Site: SiteTraceRun, App: "FFT", Mode: ModePanic},
		{Site: SiteExecPhase, Task: "diag", Mode: ModeStepBudget, Once: true},
		{Site: SiteCompile, Kind: "coupled", Mode: ModeTrap, Trap: fault.TrapNilDeref},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Errorf("parsed rules differ:\n got %+v\nwant %+v", rules, want)
	}
	if rules, err := ParseRules(" "); err != nil || rules != nil {
		t.Errorf("blank spec: rules=%v err=%v", rules, err)
	}
	for _, bad := range []string{
		"nope,,,,error",              // unknown site
		"compile,,,,explode",         // unknown mode
		"compile,,,,error,nil-deref", // trap kind on non-trap
		"compile,,,,trap,sideways",   // unknown trap kind
		"compile,error",              // wrong arity
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted an invalid rule", bad)
		}
	}
}
