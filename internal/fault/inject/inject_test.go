package inject

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dae/internal/fault"
)

func TestRuleMatching(t *testing.T) {
	in := New(
		Rule{Site: SiteCompile, App: "LU", Mode: ModeError},
		Rule{Site: SiteTraceRun, Kind: "coupled", Mode: ModeError},
	)
	hook := in.Hook()
	cases := []struct {
		site      Site
		app, kind string
		want      bool
	}{
		{SiteCompile, "LU", "coupled", true},       // rule 0: any kind
		{SiteCompile, "LU", "compiler-dae", true},  // rule 0
		{SiteCompile, "FFT", "coupled", false},     // wrong app, wrong site for rule 1
		{SiteTraceRun, "FFT", "coupled", true},     // rule 1: any app
		{SiteTraceRun, "FFT", "manual-dae", false}, // wrong kind
		{SiteAccessGen, "LU", "coupled", false},    // no rule for this site
	}
	for _, c := range cases {
		err := hook(c.site, c.app, c.kind)
		if got := err != nil; got != c.want {
			t.Errorf("hook(%s, %s, %s) fired=%v, want %v", c.site, c.app, c.kind, got, c.want)
		}
	}
}

func TestModesProduceTypedFaults(t *testing.T) {
	cases := []struct {
		mode Mode
		want error
	}{
		{ModeStepBudget, fault.ErrStepBudget},
		{ModeHeapBudget, fault.ErrHeapBudget},
		{ModeTimeout, fault.ErrTimeout},
		{ModeTrap, fault.ErrTrap},
	}
	for _, c := range cases {
		hook := New(Rule{Mode: c.mode}).Hook()
		err := hook(SiteTraceRun, "LU", "coupled")
		if !errors.Is(err, c.want) {
			t.Errorf("mode %v: %v does not match its fault sentinel", c.mode, err)
		}
	}

	hook := New(Rule{Mode: ModeTrap, Trap: fault.TrapOutOfBounds}).Hook()
	if tr := fault.TrapOf(hook(SiteTraceRun, "LU", "coupled")); tr != fault.TrapOutOfBounds {
		t.Errorf("trap kind = %v, want out-of-bounds", tr)
	}
}

func TestModePanicPanics(t *testing.T) {
	hook := New(Rule{Mode: ModePanic}).Hook()
	defer func() {
		if recover() == nil {
			t.Error("ModePanic hook did not panic")
		}
	}()
	hook(SiteCompile, "LU", "coupled")
}

func TestFiredIsSortedAndDeduplicatedLog(t *testing.T) {
	in := New(Rule{Mode: ModeError})
	hook := in.Hook()
	// Fire out of order, as a racy worker pool would.
	hook(SiteTraceRun, "LU", "coupled")
	hook(SiteCompile, "FFT", "manual-dae")
	hook(SiteCompile, "CG", "coupled")
	got := in.Fired()
	want := append([]string(nil), got...)
	if !sortedStrings(want) {
		t.Errorf("Fired() not sorted: %v", got)
	}
	if len(got) != 3 {
		t.Errorf("Fired() has %d entries, want 3: %v", len(got), got)
	}
	// A second call returns the same snapshot.
	if again := in.Fired(); !reflect.DeepEqual(again, got) {
		t.Errorf("Fired() not stable: %v vs %v", again, got)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestCorruptCacheDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.json", "b.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(`{"version":2,"key":"k","sum":"s"}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := CorruptCacheDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("corrupted %d files, want 2", n)
	}
	for _, name := range []string{"a.json", "b.json"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) >= len(`{"version":2,"key":"k","sum":"s"}`) {
			t.Errorf("%s not truncated (%d bytes)", name, len(b))
		}
	}
	// Bit-flip mode keeps the length but changes content.
	orig := []byte(`{"version":2,"key":"k","sum":"s"}`)
	p := filepath.Join(dir, "c.json")
	if err := os.WriteFile(p, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CorruptCacheDir(dir, false); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(orig) || reflect.DeepEqual(b, orig) {
		t.Errorf("bit-flip mode: len %d→%d, equal=%v", len(orig), len(b), reflect.DeepEqual(b, orig))
	}
}
