// Package dae is a Go reproduction of "Fix the code. Don't tweak the
// hardware: A new compiler approach to Voltage-Frequency scaling"
// (Jimborean, Koukos, Spiliopoulos, Black-Schaffer, Kaxiras — CGO 2014).
//
// The library contains a complete decoupled access-execute (DAE) toolchain:
//
//   - a C-like task language (TaskC) with a front end, an SSA IR, and the
//     classic scalar optimizations (internal/taskc, internal/ir,
//     internal/passes);
//   - the paper's contribution: automatic generation of prefetch-only
//     access phases, via a polyhedral analysis for affine tasks and an
//     optimized task skeleton for non-affine tasks (internal/dae, with
//     internal/scev and internal/poly as analyses);
//   - a deterministic machine model: cache hierarchy, interval timing
//     model, DVFS levels, and the paper's calibrated power model
//     (internal/mem, internal/cpu, internal/dvfs, internal/power);
//   - the DAE runtime that schedules access+execute task pairs across
//     simulated cores under per-phase DVFS policies (internal/rt);
//   - the seven evaluation benchmarks and the harness regenerating every
//     table and figure of the paper (internal/bench, internal/eval);
//   - a typed fault taxonomy (internal/fault) with resource budgets and
//     context cancellation, so every pipeline failure — parse error,
//     interpreter trap, exhausted step budget, timeout, recovered panic —
//     is classifiable with errors.Is;
//   - a supervised degradation ladder: access-version generation records a
//     typed rejection for every rung it falls down (affine → skeleton →
//     coupled, see DegradationReport), and the runtime supervisor
//     (TraceConfig.Degrade) contains access-phase faults by quarantining the
//     task type and replaying it coupled at the fixed frequency, so one
//     fault degrades a run instead of killing a workload (internal/rt,
//     internal/chaos for the randomized soak harness).
//
// The typical flow:
//
//	mod, _ := dae.Compile(src, "kernel")
//	results, _ := dae.GenerateAccess(mod, dae.DefaultOptions())
//	// inspect results["mytask"].Access, run under the simulated runtime...
package dae

import (
	"context"

	daepass "dae/internal/dae"
	"dae/internal/dvfs"
	"dae/internal/fault"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/mem"
	"dae/internal/rt"
)

// Compiler-side types.
type (
	// Module is a compiled TaskC program.
	Module = ir.Module
	// Func is one IR function (a task, an access version, or a helper).
	Func = ir.Func
	// Options configure access-version generation (see Defaults).
	Options = daepass.Options
	// Result describes how one task's access version was generated.
	Result = daepass.Result
	// Strategy identifies the generation path (affine / skeleton / none).
	Strategy = daepass.Strategy
	// Rejection records why one rung of the degradation ladder was not
	// taken for a task (Result.Rejections).
	Rejection = daepass.Rejection
	// DegradationReport summarizes the ladder outcome of a whole module:
	// which tasks landed on which strategy, and which rungs faulted.
	DegradationReport = daepass.DegradationReport
)

// NewDegradationReport builds the compile-time ladder report from the
// result map of GenerateAccess.
func NewDegradationReport(results map[string]*Result) *DegradationReport {
	return daepass.NewDegradationReport(results)
}

// Generation strategies.
const (
	StrategyNone     = daepass.StrategyNone
	StrategyAffine   = daepass.StrategyAffine
	StrategySkeleton = daepass.StrategySkeleton
)

// Simulation-side types.
type (
	// Heap is the simulated address space benchmarks allocate arrays in.
	Heap = interp.Heap
	// Seg is one simulated allocation.
	Seg = interp.Seg
	// Value is a task argument (Int, Float, or Ptr).
	Value = interp.Value
	// Workload is a phased task graph over a compiled module.
	Workload = rt.Workload
	// Task is one schedulable task invocation.
	Task = rt.Task
	// Trace is the frequency-independent record of one workload execution.
	Trace = rt.Trace
	// TraceConfig selects core count, cache hierarchy, and coupling.
	TraceConfig = rt.TraceConfig
	// Machine bundles the timing, DVFS, and power models.
	Machine = rt.Machine
	// Metrics is the outcome of evaluating a trace under a policy.
	Metrics = rt.Metrics
	// FreqPolicy selects per-phase frequencies.
	FreqPolicy = rt.FreqPolicy
	// DegradeMode selects how the runtime supervisor contains task faults
	// (TraceConfig.Degrade).
	DegradeMode = rt.DegradeMode
	// HierarchyConfig describes the cache hierarchy.
	HierarchyConfig = mem.HierarchyConfig
	// DVFSTable is the machine's voltage-frequency capability.
	DVFSTable = dvfs.Table
)

// Frequency policies.
const (
	// PolicyFixed runs everything at Machine.FixedFreq.
	PolicyFixed = rt.PolicyFixed
	// PolicyMinMax runs access at fmin and execute at fmax.
	PolicyMinMax = rt.PolicyMinMax
	// PolicyOptimalEDP picks each phase's locally EDP-optimal level.
	PolicyOptimalEDP = rt.PolicyOptimalEDP
	// PolicyMinFixed runs access at fmin and execute at Machine.FixedFreq.
	PolicyMinFixed = rt.PolicyMinFixed
	// PolicyOnline predicts each phase's level from the previous instance
	// of the same task type (the runtime scheme the paper cites).
	PolicyOnline = rt.PolicyOnline
)

// Degradation modes.
const (
	// DegradeOff aborts the run on the first task fault (legacy behavior).
	DegradeOff = rt.DegradeOff
	// DegradeAccess quarantines a task type whose access phase faults and
	// replays it coupled at Machine.FixedFreq; execute faults still abort.
	DegradeAccess = rt.DegradeAccess
	// DegradeFull additionally contains execute-phase faults to the failing
	// task: the batch completes, the task is marked failed, and the error is
	// still returned — supervision never masks an execute fault.
	DegradeFull = rt.DegradeFull
)

// ParseDegradeMode parses "off", "access", or "full" (the CLIs' -degrade
// values).
func ParseDegradeMode(s string) (DegradeMode, error) { return rt.ParseDegradeMode(s) }

// Compile parses, type-checks, and lowers TaskC source into an IR module.
func Compile(src, name string) (*Module, error) { return lower.Compile(src, name) }

// ParseIR parses the textual IR form printed by Module.String back into a
// module (the printer/parser round trip is lossless up to SSA numbering).
func ParseIR(src string) (*Module, error) { return ir.ParseModule(src) }

// DefaultOptions returns the paper's access-generation configuration.
func DefaultOptions() Options { return daepass.Defaults() }

// GenerateAccess optimizes the module (-O3: inlining, SSA, folding) and
// generates an access version for every task, adding them to the module as
// "<task>_access". The result map is keyed by task name.
func GenerateAccess(m *Module, opts Options) (map[string]*Result, error) {
	return daepass.GenerateModule(m, opts)
}

// RefineOptions configure profile-guided prefetch pruning.
type RefineOptions = daepass.RefineOptions

// DefaultRefine returns the standard profile-guided refinement settings.
func DefaultRefine() RefineOptions { return daepass.DefaultRefine() }

// RefineAccess profiles a task's generated access version on representative
// argument sets and removes prefetch instructions that rarely miss the
// private caches (resident tables, redundant same-line fetches) — the
// profiling step the paper proposes as future work (§6.2.3, §7). It returns
// the number of pruned static prefetches. Call before tracing workloads
// that use the access version.
func RefineAccess(res *Result, opts RefineOptions, argSets ...[]Value) (int, error) {
	return daepass.RefineAccess(res, opts, argSets...)
}

// VariantChoice reports the outcome of multi-version access selection.
type VariantChoice = daepass.VariantChoice

// SelectAccessVariant picks between a task's simplified and full-CFG access
// variants (generated with Options.MultiVersion) by profiling representative
// argument sets on the machine's timing model — the "multiple statically
// generated access versions" direction of the paper's §5.2.2. Access phases
// are scored at fmin and execute phases at fmax.
func SelectAccessVariant(res *Result, m Machine, hier HierarchyConfig, argSets ...[]Value) (VariantChoice, error) {
	return daepass.SelectAccessVariant(res, m.CPU, hier,
		m.DVFS.Fmin().Freq, m.DVFS.Fmax().Freq, argSets...)
}

// VizAccessMap renders a Figure 1/2 style cell map of one 2-D array for a
// concrete task invocation: '#' cells are accessed and prefetched, 'A' cells
// accessed but not prefetched (a coverage gap), 'P' prefetched but never
// accessed (over-prefetching). The execute phase runs on cloned data.
func VizAccessMap(task, access *Func, args []Value, seg *Seg, rows, cols int) (string, error) {
	return daepass.VizAccessMap(task, access, args, seg, rows, cols)
}

// NewHeap returns an empty simulated heap.
func NewHeap() *Heap { return interp.NewHeap() }

// Int wraps an integer task argument.
func Int(v int64) Value { return interp.Int(v) }

// Float wraps a float task argument.
func Float(v float64) Value { return interp.Float(v) }

// Ptr wraps an array task argument.
func Ptr(s *Seg) Value { return interp.Ptr(s) }

// DefaultTraceConfig returns the quad-core evaluation machine with the
// downscaled cache hierarchy.
func DefaultTraceConfig() TraceConfig { return rt.DefaultTraceConfig() }

// DefaultMachine returns the evaluation machine with 500 ns DVFS
// transitions.
func DefaultMachine() Machine { return rt.DefaultMachine() }

// IdealDVFS returns the zero-transition-latency DVFS table of §6.1.
func IdealDVFS() DVFSTable { return dvfs.Ideal() }

// Run traces a workload: every task executes through the interpreter
// against its core's simulated caches, access phase first where available.
func Run(w *Workload, cfg TraceConfig) (*Trace, error) { return rt.Run(w, cfg) }

// RunContext is Run under a context: cancellation or deadline expiry
// interrupts in-flight interpretation (checked every few thousand simulated
// operations) and returns a FaultError matching ErrTimeout. Combined with
// TraceConfig.MaxSteps it makes tracing of untrusted or buggy tasks safe:
// the call always returns.
func RunContext(ctx context.Context, w *Workload, cfg TraceConfig) (*Trace, error) {
	return rt.RunContext(ctx, w, cfg)
}

// Evaluate replays a trace under a frequency policy, returning time, energy
// and EDP.
func Evaluate(tr *Trace, m Machine, pol FreqPolicy) Metrics { return rt.Evaluate(tr, m, pol) }

// Fault taxonomy. Every failure produced by the pipeline — front end,
// access generation, verification, interpretation, budgets, caching — is a
// *FaultError, and errors.Is against the sentinels below classifies it
// without string matching.
type (
	// FaultError is the typed error carried by all pipeline failures. It
	// names the fault kind and, for interpreter faults, the IR function and
	// instruction that raised it.
	FaultError = fault.Error
	// TrapKind discriminates interpreter traps (div-by-zero, out-of-bounds,
	// nil-deref).
	TrapKind = fault.TrapKind
)

// Fault sentinels, matched with errors.Is.
var (
	// ErrParse matches TaskC front-end failures (lexer, parser, checker).
	ErrParse = fault.ErrParse
	// ErrLower matches lowering failures (AST to IR).
	ErrLower = fault.ErrLower
	// ErrVerify matches IR verification failures.
	ErrVerify = fault.ErrVerify
	// ErrTrap matches interpreter traps; TrapOf recovers the TrapKind.
	ErrTrap = fault.ErrTrap
	// ErrStepBudget matches interpreter step-budget exhaustion
	// (TraceConfig.MaxSteps, interp.Env.SetMaxSteps).
	ErrStepBudget = fault.ErrStepBudget
	// ErrHeapBudget matches simulated-heap budget exhaustion.
	ErrHeapBudget = fault.ErrHeapBudget
	// ErrTimeout matches context cancellation and deadline expiry.
	ErrTimeout = fault.ErrTimeout
	// ErrCacheCorrupt matches damaged trace-cache entries (the collection
	// pipeline degrades them to cache misses; the sentinel surfaces only
	// from direct cache use).
	ErrCacheCorrupt = fault.ErrCacheCorrupt
	// ErrPanic matches panics recovered at a pipeline boundary.
	ErrPanic = fault.ErrPanic
	// ErrDegraded matches expected degradation decisions (a ladder rung not
	// taken by analysis rather than by a fault).
	ErrDegraded = fault.ErrDegraded
	// ErrQuarantined matches faults recorded when the runtime supervisor
	// disables a task type's access variant for the rest of a run.
	ErrQuarantined = fault.ErrQuarantined
)

// Interpreter trap kinds.
const (
	TrapDivByZero   = fault.TrapDivByZero
	TrapOutOfBounds = fault.TrapOutOfBounds
	TrapNilDeref    = fault.TrapNilDeref
)

// FaultClass returns the short class name of an error ("trap",
// "step-budget", "timeout", ...), "error" for non-fault errors, and "" for
// nil — the label the CLIs print in per-run failure summaries.
func FaultClass(err error) string { return fault.ClassOf(err) }

// TrapOf returns the trap kind of an error matching ErrTrap, or
// fault.TrapNone otherwise.
func TrapOf(err error) TrapKind { return fault.TrapOf(err) }
