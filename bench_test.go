// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices called out in DESIGN.md. Each
// benchmark's reported custom metrics carry the reproduced numbers; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison.
package dae_test

import (
	"sync"
	"testing"

	"dae"
	"dae/internal/bench"
	"dae/internal/cpu"
	daepass "dae/internal/dae"
	"dae/internal/dvfs"
	"dae/internal/eval"
	"dae/internal/interp"
	"dae/internal/rt"
)

var (
	collectOnce sync.Once
	allData     []*eval.AppData
	collectErr  error
)

// data traces all 7 benchmarks × 3 versions once and caches the result; the
// frequency-policy evaluations the individual benchmarks time are analytic
// passes over these traces (the paper's own profile-once methodology).
func data(b *testing.B) []*eval.AppData {
	b.Helper()
	collectOnce.Do(func() {
		allData, collectErr = eval.CollectAll(rt.DefaultTraceConfig())
	})
	if collectErr != nil {
		b.Fatal(collectErr)
	}
	return allData
}

func appData(b *testing.B, name string) *eval.AppData {
	for _, d := range data(b) {
		if d.Name == name {
			return d
		}
	}
	b.Fatalf("no data for %s", name)
	return nil
}

// BenchmarkTable1 regenerates Table 1 (application characteristics).
func BenchmarkTable1(b *testing.B) {
	d := data(b)
	m := rt.DefaultMachine()
	var rows []eval.Table1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = eval.Table1(d, m)
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.TAPercent, r.App+"_TA%")
	}
	b.Logf("\n%s", eval.FormatTable1(rows))
}

func benchFig3(b *testing.B, metric string) {
	d := data(b)
	m := rt.DefaultMachine()
	var rows []eval.Fig3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = eval.Fig3(d, m)
	}
	b.StopTimer()
	gm := rows[len(rows)-1]
	pick := func(c eval.Fig3Config) float64 {
		switch metric {
		case "Energy":
			return gm.Energy[c]
		case "EDP":
			return gm.EDP[c]
		}
		return gm.Time[c]
	}
	b.ReportMetric(pick(eval.CAEOptimal), "gmean_CAEopt")
	b.ReportMetric(pick(eval.ManualOptimal), "gmean_ManualOpt")
	b.ReportMetric(pick(eval.AutoOptimal), "gmean_AutoOpt")
	b.Logf("\n%s", eval.FormatFig3(rows, metric))
}

// BenchmarkFig3Time regenerates Figure 3(a): normalized execution time.
func BenchmarkFig3Time(b *testing.B) { benchFig3(b, "Time") }

// BenchmarkFig3Energy regenerates Figure 3(b): normalized energy.
func BenchmarkFig3Energy(b *testing.B) { benchFig3(b, "Energy") }

// BenchmarkFig3EDP regenerates Figure 3(c): normalized EDP (the headline).
func BenchmarkFig3EDP(b *testing.B) {
	d := data(b)
	m := rt.DefaultMachine()
	var rows []eval.Fig3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = eval.Fig3(d, m)
	}
	b.StopTimer()
	h := eval.ComputeHeadline(rows)
	b.ReportMetric(100*h.ManualEDPGain, "ManualDAE_EDPgain%")
	b.ReportMetric(100*h.AutoEDPGain, "CompilerDAE_EDPgain%")
	b.Logf("\n%s%s", eval.FormatFig3(rows, "EDP"),
		eval.FormatHeadline(h, "headline (500ns)"))
}

func benchFig4(b *testing.B, app string) {
	d := appData(b, app)
	m := rt.DefaultMachine()
	var p eval.Fig4Profile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = eval.Fig4(d, m)
	}
	b.StopTimer()
	// Report the fmin/fmax endpoints of each series (ms / J).
	b.ReportMetric(1e3*p.CAE[0].Total(), "CAE_fmin_ms")
	b.ReportMetric(1e3*p.CAE[len(p.CAE)-1].Total(), "CAE_fmax_ms")
	b.ReportMetric(1e3*p.Auto[len(p.Auto)-1].Total(), "AutoDAE_fmax_ms")
	b.ReportMetric(p.Auto[len(p.Auto)-1].TotalE(), "AutoDAE_fmax_J")
	b.Logf("\n%s", eval.FormatFig4(p))
}

// BenchmarkFig4Cholesky regenerates Figure 4(a)/(d).
func BenchmarkFig4Cholesky(b *testing.B) { benchFig4(b, "Cholesky") }

// BenchmarkFig4FFT regenerates Figure 4(b)/(e).
func BenchmarkFig4FFT(b *testing.B) { benchFig4(b, "FFT") }

// BenchmarkFig4LibQ regenerates Figure 4(c)/(f).
func BenchmarkFig4LibQ(b *testing.B) { benchFig4(b, "LibQ") }

// BenchmarkZeroLatency reproduces §6.1's future-hardware projection: with
// instantaneous DVFS transitions the DAE EDP gains grow by a few points.
func BenchmarkZeroLatency(b *testing.B) {
	d := data(b)
	ideal := rt.DefaultMachine()
	ideal.DVFS = dvfs.Ideal()
	var h eval.Headline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = eval.ComputeHeadline(eval.Fig3(d, ideal))
	}
	b.StopTimer()
	b.ReportMetric(100*h.ManualEDPGain, "ManualDAE_EDPgain%")
	b.ReportMetric(100*h.AutoEDPGain, "CompilerDAE_EDPgain%")
	b.Logf("\n%s", eval.FormatHeadline(h, "headline (0ns)"))
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)

// BenchmarkAblationPrefetchVsLoad quantifies §3.1's reason for turning loads
// into prefetches: with the access phase's memory parallelism capped at the
// blocking-load level, the access phases slow down and the EDP gain shrinks.
func BenchmarkAblationPrefetchVsLoad(b *testing.B) {
	d := data(b)
	withPref := rt.DefaultMachine()
	asLoads := withPref
	p := cpu.DefaultParams()
	p.MLPPrefetch = p.MLPLoad // plain loads instead of builtin prefetch
	asLoads.CPU = p
	var gainPref, gainLoad float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gainPref = eval.ComputeHeadline(eval.Fig3(d, withPref)).AutoEDPGain
		gainLoad = eval.ComputeHeadline(eval.Fig3(d, asLoads)).AutoEDPGain
	}
	b.StopTimer()
	b.ReportMetric(100*gainPref, "EDPgain_prefetch%")
	b.ReportMetric(100*gainLoad, "EDPgain_plainload%")
	b.Logf("prefetch MLP: %.1f%% EDP gain; load-level MLP: %.1f%%", 100*gainPref, 100*gainLoad)
}

// BenchmarkAblationHullTest measures the §5.1.2 profitability test: without
// it, a diagonal access is prefetched via its full N² bounding box.
func BenchmarkAblationHullTest(b *testing.B) {
	src := `
task diag(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		A[0][0] += A[i][i];
	}
}`
	countPrefetches := func(hullTest bool) float64 {
		mod, err := dae.Compile(src, "diag")
		if err != nil {
			b.Fatal(err)
		}
		opts := dae.DefaultOptions()
		opts.ParamHints = map[string]int64{"N": 64}
		opts.HullTest = hullTest
		results, err := dae.GenerateAccess(mod, opts)
		if err != nil {
			b.Fatal(err)
		}
		h := dae.NewHeap()
		a := h.AllocFloat("A", 64*64)
		prog := interp.NewProgram(mod)
		env := interp.NewEnv(prog, nil)
		if _, err := env.Call(results["diag"].Access, interp.Ptr(a), interp.Int(64)); err != nil {
			b.Fatal(err)
		}
		return float64(env.Counts().Prefetches)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = countPrefetches(true)
		without = countPrefetches(false)
	}
	b.ReportMetric(with, "prefetches_with_test")
	b.ReportMetric(without, "prefetches_without_test")
	b.Logf("hull test on: %v prefetches (skeleton, exact); off: %v (N² box)", with, without)
}

// BenchmarkAblationSimplifyCFG measures §5.2.2's conditional elimination: a
// data-dependent branch guarding a read. With the simplification the access
// version prefetches only the guaranteed A stream; without it the branch and
// the conditional B prefetch are replicated into the access phase, making it
// heavier (and its prefetch count input-dependent).
func BenchmarkAblationSimplifyCFG(b *testing.B) {
	src := `
task condsum(float A[n], float B[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		if (A[i] > 0.5) {
			s += B[i];
		}
	}
	Out[0] = s;
}`
	accessWork := func(simplify bool) (ops, prefs float64) {
		mod, err := dae.Compile(src, "condsum")
		if err != nil {
			b.Fatal(err)
		}
		opts := dae.DefaultOptions()
		opts.SimplifyCFG = simplify
		results, err := dae.GenerateAccess(mod, opts)
		if err != nil {
			b.Fatal(err)
		}
		h := dae.NewHeap()
		av := h.AllocFloat("A", 4096)
		bv := h.AllocFloat("B", 4096)
		out := h.AllocFloat("Out", 1)
		for i := range av.F {
			av.F[i] = float64(i % 2) // half the B reads are taken
		}
		env := interp.NewEnv(interp.NewProgram(mod), nil)
		if _, err := env.Call(results["condsum"].Access,
			interp.Ptr(av), interp.Ptr(bv), interp.Ptr(out),
			interp.Int(4096), interp.Int(1)); err != nil {
			b.Fatal(err)
		}
		return float64(env.Counts().Total()), float64(env.Counts().Prefetches)
	}
	var withOps, withoutOps, withPref, withoutPref float64
	for i := 0; i < b.N; i++ {
		withOps, withPref = accessWork(true)
		withoutOps, withoutPref = accessWork(false)
	}
	b.ReportMetric(withOps, "access_ops_simplified")
	b.ReportMetric(withoutOps, "access_ops_full_cfg")
	b.Logf("simplified: %v ops / %v prefetches; full CFG: %v ops / %v prefetches",
		withOps, withPref, withoutOps, withoutPref)
}

// BenchmarkAblationStores tests §5.2.1's finding that prefetching written
// locations does not pay: enabling store prefetching grows LBM's access
// phases without reducing execute-phase stalls enough.
func BenchmarkAblationStores(b *testing.B) {
	run := func(prefetchStores bool) rt.Metrics {
		bench.OptionsHook = func(o *dae.Options) { o.PrefetchStores = prefetchStores }
		defer func() { bench.OptionsHook = nil }()
		app, err := bench.AppByName("LBM")
		if err != nil {
			b.Fatal(err)
		}
		built, err := app.Build(bench.Auto)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := rt.Run(built.W, rt.DefaultTraceConfig())
		if err != nil {
			b.Fatal(err)
		}
		return rt.Evaluate(tr, rt.DefaultMachine(), rt.PolicyOptimalEDP)
	}
	var off, on rt.Metrics
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(off.EDP*1e6, "EDP_uJs_stores_off")
	b.ReportMetric(on.EDP*1e6, "EDP_uJs_stores_on")
	b.Logf("store prefetch off: EDP %.4g (T %.4gms); on: EDP %.4g (T %.4gms)",
		off.EDP, off.Time*1e3, on.EDP, on.Time*1e3)
}

// BenchmarkAblationGranularity sweeps task granularity (§3.1: the working
// set should just fit the private caches).
func BenchmarkAblationGranularity(b *testing.B) {
	src := `
task triad(float A[n], float B[n], float C[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		A[i] = B[i] + 2.5 * C[i];
	}
}`
	edpFor := func(chunk int) float64 {
		const total = 65536
		mod, err := dae.Compile(src, "triad")
		if err != nil {
			b.Fatal(err)
		}
		opts := dae.DefaultOptions()
		opts.ParamHints = map[string]int64{"n": total, "lo": 0, "hi": int64(chunk)}
		results, err := dae.GenerateAccess(mod, opts)
		if err != nil {
			b.Fatal(err)
		}
		h := dae.NewHeap()
		a := h.AllocFloat("A", total)
		bb := h.AllocFloat("B", total)
		c := h.AllocFloat("C", total)
		var tasks []dae.Task
		for lo := 0; lo < total; lo += chunk {
			tasks = append(tasks, dae.Task{Name: "triad", Args: []dae.Value{
				dae.Ptr(a), dae.Ptr(bb), dae.Ptr(c),
				dae.Int(total), dae.Int(int64(lo)), dae.Int(int64(lo + chunk)),
			}})
		}
		w := &dae.Workload{Name: "triad", Module: mod,
			Access:  map[string]*dae.Func{"triad": results["triad"].Access},
			Batches: [][]dae.Task{tasks}}
		tr, err := dae.Run(w, dae.DefaultTraceConfig())
		if err != nil {
			b.Fatal(err)
		}
		return dae.Evaluate(tr, dae.DefaultMachine(), dae.PolicyMinMax).EDP
	}
	chunks := []int{64, 256, 1024, 4096, 16384}
	vals := make([]float64, len(chunks))
	for i := 0; i < b.N; i++ {
		for j, c := range chunks {
			vals[j] = edpFor(c)
		}
	}
	for j, c := range chunks {
		b.ReportMetric(vals[j]*1e9, "EDP_nJs_chunk"+itoa(c))
	}
	b.Logf("granularity sweep (chunk → EDP): %v → %v", chunks, vals)
}

// BenchmarkAblationCacheLine measures §5.2.3's per-cache-line prefetching on
// the affine path: striding the generated innermost loop by 8 cuts the
// access phase's instruction count with the same lines covered.
func BenchmarkAblationCacheLine(b *testing.B) {
	src := `
task scale(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = 0; j < N; j++) {
			A[i][j] = A[i][j] * 1.5;
		}
	}
}`
	accessOps := func(stride int) float64 {
		mod, err := dae.Compile(src, "scale")
		if err != nil {
			b.Fatal(err)
		}
		opts := dae.DefaultOptions()
		opts.ParamHints = map[string]int64{"N": 64}
		opts.CacheLineStride = stride
		results, err := dae.GenerateAccess(mod, opts)
		if err != nil {
			b.Fatal(err)
		}
		h := dae.NewHeap()
		a := h.AllocFloat("A", 64*64)
		env := interp.NewEnv(interp.NewProgram(mod), nil)
		if _, err := env.Call(results["scale"].Access, interp.Ptr(a), interp.Int(64)); err != nil {
			b.Fatal(err)
		}
		return float64(env.Counts().Total())
	}
	var perElem, perLine float64
	for i := 0; i < b.N; i++ {
		perElem = accessOps(1)
		perLine = accessOps(8)
	}
	b.ReportMetric(perElem, "access_ops_per_element")
	b.ReportMetric(perLine, "access_ops_per_line")
	b.Logf("per-element: %v ops; per-line: %v ops", perElem, perLine)
}

// BenchmarkProfileGuidedRefinement measures the paper's §7 future work,
// implemented in dae.RefineAccess: profile-guided pruning of prefetches that
// rarely miss (resident tables, redundant same-line fetches). Compared on
// Cigar, whose fitness kernel prefetches a cache-resident lookup table.
func BenchmarkProfileGuidedRefinement(b *testing.B) {
	run := func(refine bool) rt.Metrics {
		app, err := bench.AppByName("Cigar")
		if err != nil {
			b.Fatal(err)
		}
		built, err := app.Build(bench.Auto)
		if err != nil {
			b.Fatal(err)
		}
		if refine {
			if _, err := built.Refine(daepass.DefaultRefine(), 4); err != nil {
				b.Fatal(err)
			}
		}
		tr, err := rt.Run(built.W, rt.DefaultTraceConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := built.Verify(); err != nil {
			b.Fatal(err)
		}
		return rt.Evaluate(tr, rt.DefaultMachine(), rt.PolicyOptimalEDP)
	}
	var plain, refined rt.Metrics
	for i := 0; i < b.N; i++ {
		plain = run(false)
		refined = run(true)
	}
	b.ReportMetric(plain.EDP*1e6, "EDP_uJs_plain")
	b.ReportMetric(refined.EDP*1e6, "EDP_uJs_refined")
	b.Logf("plain auto: EDP %.4g (access %.4gms); profile-refined: EDP %.4g (access %.4gms)",
		plain.EDP, plain.AccessTime*1e3, refined.EDP, refined.AccessTime*1e3)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
