module dae

go 1.22
