// affine-stencil walks through the paper's polyhedral examples (§5.1):
// Listing 1's whole-matrix vs block access, Listing 2's multi-array merge,
// Listing 3's access classes, and the profitability test that rejects a
// too-wide convex hull (Figure 1(b)'s failure mode).
package main

import (
	"fmt"
	"log"

	"dae"
)

const src = `
// Listing 1(b): a 3-deep nest touching only a Block x Block region of A.
task lublock(float A[N][N], int N, int Block) {
	for (int i = 0; i < Block; i++) {
		for (int j = i+1; j < Block; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < Block; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}

// Listing 2(a): one nest reading two arrays.
task multiarray(float A[N][N], float D[N][N], int N, int Block) {
	for (int i = 0; i < Block; i++) {
		for (int j = i+1; j < Block; j++) {
			for (int k = 0; k < Block; k++) {
				A[j][k] -= D[j][i] * A[i][k];
			}
		}
	}
}

// Listing 3(a): two blocks of the same array (classA and classD of Fig. 2).
task blocks(float A[N][N], int N, int Block, int Ax, int Ay, int Dx, int Dy) {
	for (int i = 0; i < Block; i++) {
		for (int j = i+1; j < Block; j++) {
			for (int k = i+1; k < Block; k++) {
				A[Ax+j][Ay+k] -= A[Dx+j][Dy+i] * A[Ax+i][Ay+k];
			}
		}
	}
}

// Figure 1(b)'s cautionary case: only the diagonal is touched, so the
// bounding hull (N^2 cells) dwarfs the N touched cells and must be rejected.
task diagonal(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		A[0][0] += A[i][i];
	}
}
`

func main() {
	mod, err := dae.Compile(src, "stencils")
	if err != nil {
		log.Fatal(err)
	}
	opts := dae.DefaultOptions()
	opts.ParamHints = map[string]int64{
		"N": 64, "Block": 8, "Ax": 0, "Ay": 0, "Dx": 32, "Dy": 32,
	}
	results, err := dae.GenerateAccess(mod, opts)
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"lublock", "multiarray", "blocks", "diagonal"} {
		r := results[name]
		fmt.Printf("== task %s ==\n", name)
		fmt.Printf("strategy: %s", r.Strategy)
		if r.Strategy == dae.StrategyAffine {
			fmt.Printf(" (classes=%d, merged nests=%d, NConvUn=%d, NOrig=%d)",
				r.Classes, r.MergedNests, r.NConvUn, r.NOrig)
		}
		if r.Reason != "" {
			fmt.Printf("\nreason: %s", r.Reason)
		}
		fmt.Println()
		if r.Access != nil {
			fmt.Printf("\n%s\n", r.Access)
		}
	}

	// Render the paper's Figure 2: the two prefetched blocks of `blocks`,
	// with the in-between region untouched.
	h := dae.NewHeap()
	a := h.AllocFloat("A", 24*24)
	for i := range a.F {
		a.F[i] = 1
	}
	args := []dae.Value{dae.Ptr(a), dae.Int(24), dae.Int(6),
		dae.Int(0), dae.Int(0), dae.Int(12), dae.Int(12)}
	viz, err := dae.VizAccessMap(mod.Func("blocks"), results["blocks"].Access, args, a, 24, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 2 reproduction (classA top-left, classD center, hull gap between):\n%s\n", viz)

	fmt.Println(`Notes:
 - lublock's 3-deep nest becomes a 2-deep prefetch nest over Block x Block
   (Listing 1(c)); the memory-range analysis of §5.1.1 would instead have
   fetched full rows of the N x N matrix.
 - multiarray merges the A and D class nests into one (Listing 2(b)).
 - blocks keeps classA and classD apart, skipping the in-between region of
   Fig. 2, and merges their equal-trip nests (Listing 3(b)).
 - diagonal fails the NConvUn <= NOrig test and falls back to the skeleton
   strategy, prefetching exactly A[i][i] per iteration.`)
}
