// multi-version demonstrates the paper's §5.2.2 proposal implemented in this
// library: for a task with a data-dependent branch, the compiler emits two
// access variants — the simplified one (conditional dropped, guaranteed
// accesses only) and the full-CFG one (branch replicated, conditional
// prefetches kept) — and profile-based selection picks per workload.
package main

import (
	"fmt"
	"log"

	"dae"
)

const src = `
// B[i] is read only where the mask is set: whether prefetching B pays off
// depends entirely on how often the branch is taken. The task is chunked
// ([lo,hi)) so each instance's working set fits the private caches (§3.1).
task masked(float A[n], float B[n], float Part[nc], int n, int nc, int c, int lo, int hi) {
	float s = 0;
	for (int i = lo; i < hi; i++) {
		if (A[i] > 0.5) {
			s += B[i];
		}
	}
	Part[c] = s;
}
`

func main() {
	mod, err := dae.Compile(src, "multi-version")
	if err != nil {
		log.Fatal(err)
	}
	opts := dae.DefaultOptions()
	opts.MultiVersion = true
	results, err := dae.GenerateAccess(mod, opts)
	if err != nil {
		log.Fatal(err)
	}
	r := results["masked"]
	fmt.Printf("simplified variant (%s strategy):\n%s\n", r.Strategy, r.Access)
	fmt.Printf("full-CFG variant:\n%s\n", r.AccessFull)

	m := dae.DefaultMachine()
	hier := dae.DefaultTraceConfig().Hierarchy

	runSelection := func(label string, takenPct int) {
		const n, chunk = 16384, 2048
		h := dae.NewHeap()
		a := h.AllocFloat("A", n)
		b := h.AllocFloat("B", n)
		part := h.AllocFloat("Part", n/chunk)
		for i := 0; i < n; i++ {
			if i%100 < takenPct {
				a.F[i] = 1
			}
			b.F[i] = float64(i)
		}
		var argSets [][]dae.Value
		for c := 0; c < n/chunk; c++ {
			argSets = append(argSets, []dae.Value{
				dae.Ptr(a), dae.Ptr(b), dae.Ptr(part),
				dae.Int(n), dae.Int(int64(n / chunk)), dae.Int(int64(c)),
				dae.Int(int64(c * chunk)), dae.Int(int64((c + 1) * chunk)),
			})
		}
		choice, err := dae.SelectAccessVariant(r, m, hier, argSets...)
		if err != nil {
			log.Fatal(err)
		}
		variant := "full-CFG (conditional prefetches kept)"
		if choice.Simplified {
			variant = "simplified (guaranteed accesses only)"
		}
		fmt.Printf("%s (branch taken %d%%): chose %s\n", label, takenPct, variant)
		fmt.Printf("  modeled access+execute per run: simplified %.1f us, full %.1f us\n",
			choice.SimplifiedScore*1e6, choice.FullScore*1e6)
	}

	runSelection("hot branch ", 95)
	runSelection("cold branch", 2)

	fmt.Println(`
The paper's observation (§5.2.2): eliminating conditionals prefetches only
guaranteed data; "some applications would benefit from keeping the
conditionals ... if particular conditional-branches are executed for the
majority of the iterations". The profile decides.`)
}
