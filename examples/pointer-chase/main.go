// pointer-chase demonstrates the skeleton strategy (§5.2) on codes the
// polyhedral model cannot touch: linked-list traversal (pointer chasing) and
// data-dependent conditionals. It shows which loads survive into the access
// version, which conditional prefetches are dropped by the CFG
// simplification, and the measured effect of the access phase on the execute
// phase's cache misses.
package main

import (
	"fmt"
	"log"

	"dae"
)

const src = `
// A linked list threaded through an index array: p = Next[p]. The access
// version must KEEP the Next loads (they feed the addresses) and prefetch
// both Next[p] and Val[p].
task chase(int Next[n], float Val[n], float Out[one], int n, int one, int start, int steps) {
	int p = start;
	float s = 0;
	for (int k = 0; k < steps; k++) {
		s += Val[p];
		p = Next[p];
	}
	Out[0] = s;
}

// A data-dependent branch: B[i] is only read when A[i] > 0.5. The simplified
// CFG drops the conditional, so only the guaranteed A[i] access is
// prefetched (§5.2.2: "only data which is guaranteed to be accessed in all
// iterations is prefetched").
task cond(float A[n], float B[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		if (A[i] > 0.5) {
			s += B[i];
		}
	}
	Out[0] = s;
}
`

func main() {
	mod, err := dae.Compile(src, "pointer-chase")
	if err != nil {
		log.Fatal(err)
	}
	results, err := dae.GenerateAccess(mod, dae.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"chase", "cond"} {
		r := results[name]
		fmt.Printf("== task %s: strategy=%s ==\n\n%s\n", name, r.Strategy, r.Access)
	}

	// Run the chase workload and show the cache effect of the access phase.
	const n = 32768
	h := dae.NewHeap()
	next := h.AllocInt("Next", n)
	val := h.AllocFloat("Val", n)
	out := h.AllocFloat("Out", 1)
	// A full-cycle permutation with a large stride defeats any spatial
	// locality: every hop is a fresh cache line.
	for i := 0; i < n; i++ {
		next.I[i] = int64((i + 4097) % n)
		val.F[i] = float64(i % 13)
	}

	const chunk = 1024
	var tasks []dae.Task
	for c := 0; c < n/chunk; c++ {
		tasks = append(tasks, dae.Task{Name: "chase", Args: []dae.Value{
			dae.Ptr(next), dae.Ptr(val), dae.Ptr(out),
			dae.Int(n), dae.Int(1), dae.Int(int64(c * chunk)), dae.Int(chunk),
		}})
	}
	w := &dae.Workload{
		Name:    "chase",
		Module:  mod,
		Access:  map[string]*dae.Func{"chase": results["chase"].Access},
		Batches: [][]dae.Task{tasks},
	}

	cfg := dae.DefaultTraceConfig()
	trDAE, err := dae.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Decoupled = false
	trCAE, err := dae.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	m := dae.DefaultMachine()
	base := dae.Evaluate(trCAE, m, dae.PolicyFixed)
	opt := dae.Evaluate(trDAE, m, dae.PolicyOptimalEDP)
	fmt.Printf("pointer chase, %d hops in %d tasks:\n", n, len(tasks))
	fmt.Printf("  coupled @ fmax : time %8.1f us  energy %7.3f mJ\n", base.Time*1e6, base.Energy*1e3)
	fmt.Printf("  DAE optimal    : time %8.1f us  energy %7.3f mJ  (EDP x%.2f)\n",
		opt.Time*1e6, opt.Energy*1e3, opt.EDP/base.EDP)
	fmt.Println("\nThe helper-thread-style clone pays off even though the access phase")
	fmt.Println("must serially chase the same pointers: it runs at fmin where the")
	fmt.Println("chasing is memory-latency-bound anyway, and the execute phase then")
	fmt.Println("runs compute-bound at fmax.")
}
