// energy-sweep reproduces the shape of the paper's Figure 4 on a single
// kernel: it sweeps the execute-phase frequency from fmin to fmax (access
// phase pinned at fmin) and prints time/energy/EDP for coupled execution and
// for the compiler-generated DAE version, showing that coupled execution
// trades time for energy while DAE holds time nearly flat.
package main

import (
	"fmt"
	"log"

	"dae"
)

const src = `
task stencil(float Dst[n], float Src[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		Dst[i] = 0.25*Src[i-1] + 0.5*Src[i] + 0.25*Src[i+1];
	}
}
`

func main() {
	mod, err := dae.Compile(src, "sweep")
	if err != nil {
		log.Fatal(err)
	}
	opts := dae.DefaultOptions()
	opts.ParamHints = map[string]int64{"n": 65536, "lo": 1, "hi": 2049}
	results, err := dae.GenerateAccess(mod, opts)
	if err != nil {
		log.Fatal(err)
	}
	r := results["stencil"]
	fmt.Printf("stencil access strategy: %s (NConvUn=%d, NOrig=%d)\n\n", r.Strategy, r.NConvUn, r.NOrig)

	const n, chunk = 65536, 2048
	build := func() (*dae.Workload, *dae.Seg) {
		h := dae.NewHeap()
		dst := h.AllocFloat("Dst", n)
		srcA := h.AllocFloat("Src", n)
		for i := 0; i < n; i++ {
			srcA.F[i] = float64(i % 97)
		}
		var tasks []dae.Task
		for lo := 1; lo+chunk < n; lo += chunk {
			tasks = append(tasks, dae.Task{Name: "stencil", Args: []dae.Value{
				dae.Ptr(dst), dae.Ptr(srcA), dae.Int(n),
				dae.Int(int64(lo)), dae.Int(int64(lo + chunk)),
			}})
		}
		return &dae.Workload{
			Name:    "stencil",
			Module:  mod,
			Access:  map[string]*dae.Func{"stencil": r.Access},
			Batches: [][]dae.Task{tasks},
		}, dst
	}

	wDAE, _ := build()
	cfg := dae.DefaultTraceConfig()
	trDAE, err := dae.Run(wDAE, cfg)
	if err != nil {
		log.Fatal(err)
	}
	wCAE, _ := build()
	cfg.Decoupled = false
	trCAE, err := dae.Run(wCAE, cfg)
	if err != nil {
		log.Fatal(err)
	}

	m := dae.DefaultMachine()
	fmt.Printf("%8s | %22s | %30s\n", "", "coupled (CAE)", "decoupled (access @ fmin)")
	fmt.Printf("%8s | %10s %11s | %10s %11s %7s\n", "f(GHz)", "time(us)", "energy(mJ)", "time(us)", "energy(mJ)", "EDPx")
	baseEDP := 0.0
	for i, lvl := range m.DVFS.Levels {
		mm := m
		mm.FixedFreq = lvl.Freq
		cae := dae.Evaluate(trCAE, mm, dae.PolicyFixed)
		dd := dae.Evaluate(trDAE, mm, dae.PolicyMinFixed)
		if i == len(m.DVFS.Levels)-1 {
			baseEDP = cae.EDP
		}
		_ = baseEDP
		fmt.Printf("%8.1f | %10.1f %11.3f | %10.1f %11.3f %7.3f\n",
			lvl.Freq, cae.Time*1e6, cae.Energy*1e3, dd.Time*1e6, dd.Energy*1e3, dd.EDP/cae.EDP)
	}
	fmt.Println("\nAs the paper's Figure 4 shows: coupled time stretches as f drops,")
	fmt.Println("while the decoupled version's execute phase shrinks with f on a")
	fmt.Println("prefetched cache and its access phase stays pinned at fmin.")
}
