// Quickstart: compile a task, let the compiler generate its access phase,
// and measure coupled vs decoupled execution on the simulated machine.
package main

import (
	"fmt"
	"log"

	"dae"
)

// A memory-bound streaming kernel, processed in task-sized chunks.
const src = `
task triad(float A[n], float B[n], float C[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		A[i] = B[i] + 2.5 * C[i];
	}
}
`

func main() {
	// 1. Compile TaskC and generate the access phase.
	mod, err := dae.Compile(src, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	opts := dae.DefaultOptions()
	opts.ParamHints = map[string]int64{"n": 65536, "lo": 0, "hi": 1024}
	results, err := dae.GenerateAccess(mod, opts)
	if err != nil {
		log.Fatal(err)
	}
	r := results["triad"]
	fmt.Printf("access version generated via the %s strategy:\n\n%s\n", r.Strategy, r.Access)

	// 2. Build a workload: 64 chunk tasks over 64k elements.
	const total, chunk = 65536, 1024
	h := dae.NewHeap()
	a := h.AllocFloat("A", total)
	b := h.AllocFloat("B", total)
	c := h.AllocFloat("C", total)
	for i := 0; i < total; i++ {
		b.F[i] = float64(i)
		c.F[i] = float64(2 * i)
	}
	var tasks []dae.Task
	for lo := 0; lo < total; lo += chunk {
		tasks = append(tasks, dae.Task{Name: "triad", Args: []dae.Value{
			dae.Ptr(a), dae.Ptr(b), dae.Ptr(c),
			dae.Int(total), dae.Int(int64(lo)), dae.Int(int64(lo + chunk)),
		}})
	}
	w := &dae.Workload{
		Name:    "triad",
		Module:  mod,
		Access:  map[string]*dae.Func{"triad": r.Access},
		Batches: [][]dae.Task{tasks},
	}

	// 3. Trace decoupled and coupled runs (fresh caches each).
	cfg := dae.DefaultTraceConfig()
	trDAE, err := dae.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < total; i++ {
		a.F[i] = 0 // reset output, then re-trace coupled
	}
	cfg.Decoupled = false
	trCAE, err := dae.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate the paper's configurations.
	m := dae.DefaultMachine()
	base := dae.Evaluate(trCAE, m, dae.PolicyFixed)
	daeMM := dae.Evaluate(trDAE, m, dae.PolicyMinMax)
	daeOpt := dae.Evaluate(trDAE, m, dae.PolicyOptimalEDP)

	fmt.Printf("%-26s %10s %10s %10s\n", "configuration", "time(us)", "energy(mJ)", "EDP ratio")
	show := func(label string, met dae.Metrics) {
		fmt.Printf("%-26s %10.1f %10.3f %10.3f\n", label, met.Time*1e6, met.Energy*1e3, met.EDP/base.EDP)
	}
	show("coupled @ fmax", base)
	show("DAE access@fmin exec@fmax", daeMM)
	show("DAE optimal-EDP", daeOpt)

	// Sanity: the computation really ran.
	want := float64(100) + 2.5*float64(200)
	if a.F[100] != want {
		log.Fatalf("wrong result: A[100] = %g, want %g", a.F[100], want)
	}
	fmt.Println("\nresult verified; DAE saved",
		fmt.Sprintf("%.1f%% EDP vs coupled execution at max frequency.", 100*(1-daeOpt.EDP/base.EDP)))
}
