package dae_test

import (
	"strings"
	"testing"

	"dae"
)

// End-to-end tests of the public API surface, as a downstream user would
// exercise it.

const apiSrc = `
float half(float x) { return x * 0.5; }

task blur(float Dst[n], float Src[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		Dst[i] = half(Src[i-1]) + half(Src[i+1]);
	}
}
`

func TestPublicAPIEndToEnd(t *testing.T) {
	mod, err := dae.Compile(apiSrc, "api")
	if err != nil {
		t.Fatal(err)
	}
	opts := dae.DefaultOptions()
	opts.ParamHints = map[string]int64{"n": 8192, "lo": 1, "hi": 1025}
	results, err := dae.GenerateAccess(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := results["blur"]
	if r.Strategy != dae.StrategyAffine {
		t.Fatalf("strategy = %v (%s), want affine (calls inlined, affine indices)", r.Strategy, r.Reason)
	}
	if mod.Func("blur_access") == nil {
		t.Fatal("access version not added to module")
	}

	// IR round trip through the public parser.
	mod2, err := dae.ParseIR(mod.String())
	if err != nil {
		t.Fatalf("ParseIR: %v", err)
	}
	if len(mod2.Funcs) != len(mod.Funcs) {
		t.Error("round trip lost functions")
	}

	// Build and trace a workload.
	const n, chunk = 8192, 1024
	h := dae.NewHeap()
	dst := h.AllocFloat("Dst", n)
	src := h.AllocFloat("Src", n)
	for i := 0; i < n; i++ {
		src.F[i] = float64(i)
	}
	var tasks []dae.Task
	for lo := 1; lo+chunk < n; lo += chunk {
		tasks = append(tasks, dae.Task{Name: "blur", Args: []dae.Value{
			dae.Ptr(dst), dae.Ptr(src), dae.Int(n), dae.Int(int64(lo)), dae.Int(int64(lo + chunk)),
		}})
	}
	w := &dae.Workload{Name: "blur", Module: mod,
		Access:  map[string]*dae.Func{"blur": r.Access},
		Batches: [][]dae.Task{tasks}}

	tr, err := dae.Run(w, dae.DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The computation happened: blur of a ramp is the midpoint value.
	if got, want := dst.F[100], float64(100); got != want {
		t.Errorf("Dst[100] = %g, want %g", got, want)
	}

	m := dae.DefaultMachine()
	for _, pol := range []dae.FreqPolicy{
		dae.PolicyFixed, dae.PolicyMinMax, dae.PolicyOptimalEDP, dae.PolicyMinFixed, dae.PolicyOnline,
	} {
		met := dae.Evaluate(tr, m, pol)
		if met.Time <= 0 || met.Energy <= 0 || met.EDP <= 0 {
			t.Errorf("policy %d: non-positive metrics %+v", pol, met)
		}
	}

	// Profile-guided refinement through the public API (nothing prunable in
	// a pure stream, but the call path must work).
	if _, err := dae.RefineAccess(r, dae.DefaultRefine(), tasks[0].Args); err != nil {
		t.Fatalf("RefineAccess: %v", err)
	}

	// Machine knobs.
	if dae.IdealDVFS().TransitionLatency != 0 {
		t.Error("IdealDVFS should have zero transition latency")
	}
}

func TestPublicAPICoreScaling(t *testing.T) {
	// The virtual-time scheduler must show near-linear scaling for a batch
	// of independent equal tasks.
	mod, err := dae.Compile(apiSrc, "api")
	if err != nil {
		t.Fatal(err)
	}
	opts := dae.DefaultOptions()
	opts.HullTest = false
	if _, err := dae.GenerateAccess(mod, opts); err != nil {
		t.Fatal(err)
	}
	build := func() *dae.Workload {
		const n, chunk = 16384, 1024
		h := dae.NewHeap()
		dst := h.AllocFloat("Dst", n)
		src := h.AllocFloat("Src", n)
		var tasks []dae.Task
		for lo := 1; lo+chunk < n; lo += chunk {
			tasks = append(tasks, dae.Task{Name: "blur", Args: []dae.Value{
				dae.Ptr(dst), dae.Ptr(src), dae.Int(n), dae.Int(int64(lo)), dae.Int(int64(lo + chunk)),
			}})
		}
		return &dae.Workload{Name: "blur", Module: mod,
			Access:  map[string]*dae.Func{"blur": mod.Func("blur_access")},
			Batches: [][]dae.Task{tasks}}
	}

	m := dae.DefaultMachine()
	times := map[int]float64{}
	for _, cores := range []int{1, 4} {
		cfg := dae.DefaultTraceConfig()
		cfg.Cores = cores
		tr, err := dae.Run(build(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		times[cores] = dae.Evaluate(tr, m, dae.PolicyFixed).Time
	}
	speedup := times[1] / times[4]
	if speedup < 2.5 {
		t.Errorf("4-core speedup = %.2f, want near-linear (> 2.5)", speedup)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	_, err := dae.Compile(`task t(int n) { x = 1; }`, "bad")
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("compile error not surfaced: %v", err)
	}
	_, err = dae.ParseIR("func bogus {")
	if err == nil {
		t.Error("ParseIR should reject malformed input")
	}
}
