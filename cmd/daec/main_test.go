package main

import (
	"strings"
	"testing"

	"dae"
)

func TestAnalyzeModuleDemo(t *testing.T) {
	mod, err := dae.Compile(demoSrc, "demo")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := dae.DefaultOptions()
	opts.ParamHints = map[string]int64{"N": 64}
	results, err := dae.GenerateAccess(mod, opts)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var sb strings.Builder
	if errs := analyzeModule(&sb, results, opts.ParamHints); errs != 0 {
		t.Errorf("analyzeModule reported %d errors:\n%s", errs, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"task @lu: purity PASS",
		"coverage 100.0% (exact)",
		"wcec",        // static bound line
		"(exact)",     // affine nest at concrete hints → exact kind
		"rwcec",       // at least one decision point in the RWCEC table
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeBenchmarksClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all seven benchmarks")
	}
	var sb strings.Builder
	errs, err := analyzeBenchmarks(&sb)
	if err != nil {
		t.Fatalf("analyzeBenchmarks: %v", err)
	}
	if errs != 0 {
		t.Errorf("got %d error diagnostics:\n%s", errs, sb.String())
	}
	out := sb.String()
	if strings.Contains(out, "FAIL") {
		t.Errorf("purity failure in output:\n%s", out)
	}
	// Every benchmark section must appear and report zero races.
	for _, app := range []string{"LU", "Cholesky", "FFT", "LBM", "LibQ", "Cigar", "CG"} {
		if !strings.Contains(out, app) {
			t.Errorf("output missing app %s", app)
		}
	}
	// The WCEC sections must be present and the soundness gate must pass.
	for _, want := range []string{"== static WCEC bounds ==", "== wcec soundness gate ==", "soundness: PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
