package main

import (
	"fmt"
	"io"
	"math"
	"sort"

	"dae"
	"dae/internal/analysis"
	"dae/internal/analysis/wcec"
	"dae/internal/bench"
	"dae/internal/eval"
	"dae/internal/mem"
	"dae/internal/rt"
)

// analyzeModule reports the static DAE-contract checks for one compiled
// module: the purity proof of every generated access version and its static
// prefetch coverage at the given parameter hints. Race checking needs
// concrete task instances (a workload), so it runs only in bench mode.
// Returns the number of SevError diagnostics.
func analyzeModule(w io.Writer, results map[string]*dae.Result, hints map[string]int64) int {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	lineBytes := int64(mem.EvalHierarchy().L1.LineBytes)
	errs := 0
	for _, n := range names {
		r := results[n]
		if r.Access == nil {
			fmt.Fprintf(w, "task @%s: no access version (%s)\n", n, r.Reason)
			continue
		}
		diags := analysis.VerifyAccessPurity(r.Access)
		if analysis.HasErrors(diags) {
			errs += analysis.CountSev(diags, analysis.SevError)
			fmt.Fprintf(w, "task @%s: purity FAIL\n%s", n, analysis.Format(diags))
		} else {
			fmt.Fprintf(w, "task @%s: purity PASS (strategy=%s)\n", n, r.Strategy)
		}
		cov := analysis.StaticCoverage(r.Task, r.Access, hints, lineBytes, 0)
		kind := "may-read"
		if cov.Exact {
			kind = "exact"
		}
		fmt.Fprintf(w, "task @%s: coverage %.1f%% (%s)\n", n, 100*cov.Fraction(), kind)
		for _, note := range cov.Notes {
			fmt.Fprintf(w, "task @%s: note: %s\n", n, note)
		}
	}
	errs += analyzeWCEC(w, results, hints)
	return errs
}

// analyzeWCEC reports the static cost analysis per task at the parameter
// hints: the WCEC bound with its provenance kind, the RWCEC decision-point
// table the intra-task DVFS policy drives reselection from, and any wcec
// diagnostics (unbounded loops are warnings, not errors — the simulator
// falls back to profile bounds for those tasks).
func analyzeWCEC(w io.Writer, results map[string]*dae.Result, hints map[string]int64) int {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	an := wcec.New(wcec.NewCostModel(rt.DefaultMachine().CPU))
	errs := 0
	for _, n := range names {
		r := results[n]
		b := an.BoundFunc(r.Task, hints)
		if math.IsInf(b.Cycles, 1) {
			fmt.Fprintf(w, "task @%s: wcec unbounded\n", n)
		} else {
			fmt.Fprintf(w, "task @%s: wcec %.0f cycles (%s), %d decision point(s)\n",
				n, b.Cycles, b.Kind, len(b.Points))
		}
		for _, p := range b.Points {
			fmt.Fprintf(w, "task @%s:   %c %d:%d %s: rwcec %.0f\n",
				n, p.Kind, p.Pos.Line, p.Pos.Col, p.Block, p.RWCEC)
		}
		if len(b.Diags) > 0 {
			errs += analysis.CountSev(b.Diags, analysis.SevError)
			fmt.Fprint(w, analysis.Format(b.Diags))
		}
	}
	return errs
}

// analyzeBenchmarks runs the full contract-checker suite over the paper's
// seven benchmarks: per-task purity proofs, static-vs-dynamic coverage
// cross-validation, and the polyhedral race check over every scheduled
// batch. Returns the number of SevError diagnostics.
func analyzeBenchmarks(w io.Writer) (int, error) {
	errs := 0

	fmt.Fprintln(w, "== access-phase purity ==")
	for _, app := range bench.Apps() {
		b, err := app.Build(bench.Auto)
		if err != nil {
			return errs, fmt.Errorf("build %s: %w", app.Name, err)
		}
		tasks := make([]string, 0, len(b.Results))
		for n := range b.Results {
			tasks = append(tasks, n)
		}
		sort.Strings(tasks)
		for _, n := range tasks {
			r := b.Results[n]
			if r.Access == nil {
				fmt.Fprintf(w, "%-10s %-14s no access version (%s)\n", app.Name, n, r.Reason)
				continue
			}
			diags := analysis.VerifyAccessPurity(r.Access)
			if analysis.HasErrors(diags) {
				errs += analysis.CountSev(diags, analysis.SevError)
				fmt.Fprintf(w, "%-10s %-14s FAIL\n%s", app.Name, n, analysis.Format(diags))
			} else {
				fmt.Fprintf(w, "%-10s %-14s PASS (%s)\n", app.Name, n, r.Strategy)
			}
		}
	}

	fmt.Fprintln(w, "\n== prefetch coverage (static vs dynamic) ==")
	rows, err := eval.CoverageReport(nil, 2)
	if err != nil {
		return errs, err
	}
	fmt.Fprint(w, eval.FormatCoverage(rows))

	fmt.Fprintln(w, "\n== task-overlap races ==")
	for _, app := range bench.Apps() {
		b, err := app.Build(bench.Auto)
		if err != nil {
			return errs, fmt.Errorf("build %s: %w", app.Name, err)
		}
		diags := rt.CheckRaces(b.W)
		nerr := analysis.CountSev(diags, analysis.SevError)
		errs += nerr
		skipped := analysis.CountSev(diags, analysis.SevInfo)
		fmt.Fprintf(w, "%-10s %d race(s), %d note(s)\n", app.Name, nerr, skipped)
		if len(diags) > 0 {
			fmt.Fprint(w, analysis.Format(diags))
		}
	}

	m := rt.DefaultMachine()
	fmt.Fprintln(w, "\n== static WCEC bounds ==")
	an := wcec.New(wcec.NewCostModel(m.CPU))
	for _, app := range bench.Apps() {
		b, err := app.Build(bench.Auto)
		if err != nil {
			return errs, fmt.Errorf("build %s: %w", app.Name, err)
		}
		bs := rt.WorkloadBounds(b.W, an)
		seen := make(map[string]bool)
		for _, bd := range bs.Exec {
			if bd == nil || seen[bd.Fn.Name] {
				continue
			}
			seen[bd.Fn.Name] = true
			if math.IsInf(bd.Cycles, 1) {
				fmt.Fprintf(w, "%-10s %-14s unbounded\n", app.Name, bd.Fn.Name)
			} else {
				fmt.Fprintf(w, "%-10s %-14s %12.0f cycles (%s), %d decision point(s)\n",
					app.Name, bd.Fn.Name, bd.Cycles, bd.Kind, len(bd.Points))
			}
		}
	}

	// The soundness gate re-runs every benchmark and asserts static >= observed
	// per task record; any violation is an error-severity diagnostic, so a CI
	// run of `daec -analyze -bench` fails on an unsound bound.
	fmt.Fprintln(w, "\n== wcec soundness gate ==")
	data, err := eval.CollectAll(rt.DefaultTraceConfig())
	if err != nil {
		return errs, err
	}
	rep, err := eval.WCECSoundness(data, m)
	if err != nil {
		return errs, err
	}
	errs += analysis.CountSev(rep.Diags, analysis.SevError)
	fmt.Fprint(w, eval.FormatWCEC(rep))
	return errs, nil
}
