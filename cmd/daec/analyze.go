package main

import (
	"fmt"
	"io"
	"sort"

	"dae"
	"dae/internal/analysis"
	"dae/internal/bench"
	"dae/internal/eval"
	"dae/internal/mem"
	"dae/internal/rt"
)

// analyzeModule reports the static DAE-contract checks for one compiled
// module: the purity proof of every generated access version and its static
// prefetch coverage at the given parameter hints. Race checking needs
// concrete task instances (a workload), so it runs only in bench mode.
// Returns the number of SevError diagnostics.
func analyzeModule(w io.Writer, results map[string]*dae.Result, hints map[string]int64) int {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	lineBytes := int64(mem.EvalHierarchy().L1.LineBytes)
	errs := 0
	for _, n := range names {
		r := results[n]
		if r.Access == nil {
			fmt.Fprintf(w, "task @%s: no access version (%s)\n", n, r.Reason)
			continue
		}
		diags := analysis.VerifyAccessPurity(r.Access)
		if analysis.HasErrors(diags) {
			errs += analysis.CountSev(diags, analysis.SevError)
			fmt.Fprintf(w, "task @%s: purity FAIL\n%s", n, analysis.Format(diags))
		} else {
			fmt.Fprintf(w, "task @%s: purity PASS (strategy=%s)\n", n, r.Strategy)
		}
		cov := analysis.StaticCoverage(r.Task, r.Access, hints, lineBytes, 0)
		kind := "may-read"
		if cov.Exact {
			kind = "exact"
		}
		fmt.Fprintf(w, "task @%s: coverage %.1f%% (%s)\n", n, 100*cov.Fraction(), kind)
		for _, note := range cov.Notes {
			fmt.Fprintf(w, "task @%s: note: %s\n", n, note)
		}
	}
	return errs
}

// analyzeBenchmarks runs the full contract-checker suite over the paper's
// seven benchmarks: per-task purity proofs, static-vs-dynamic coverage
// cross-validation, and the polyhedral race check over every scheduled
// batch. Returns the number of SevError diagnostics.
func analyzeBenchmarks(w io.Writer) (int, error) {
	errs := 0

	fmt.Fprintln(w, "== access-phase purity ==")
	for _, app := range bench.Apps() {
		b, err := app.Build(bench.Auto)
		if err != nil {
			return errs, fmt.Errorf("build %s: %w", app.Name, err)
		}
		tasks := make([]string, 0, len(b.Results))
		for n := range b.Results {
			tasks = append(tasks, n)
		}
		sort.Strings(tasks)
		for _, n := range tasks {
			r := b.Results[n]
			if r.Access == nil {
				fmt.Fprintf(w, "%-10s %-14s no access version (%s)\n", app.Name, n, r.Reason)
				continue
			}
			diags := analysis.VerifyAccessPurity(r.Access)
			if analysis.HasErrors(diags) {
				errs += analysis.CountSev(diags, analysis.SevError)
				fmt.Fprintf(w, "%-10s %-14s FAIL\n%s", app.Name, n, analysis.Format(diags))
			} else {
				fmt.Fprintf(w, "%-10s %-14s PASS (%s)\n", app.Name, n, r.Strategy)
			}
		}
	}

	fmt.Fprintln(w, "\n== prefetch coverage (static vs dynamic) ==")
	rows, err := eval.CoverageReport(nil, 2)
	if err != nil {
		return errs, err
	}
	fmt.Fprint(w, eval.FormatCoverage(rows))

	fmt.Fprintln(w, "\n== task-overlap races ==")
	for _, app := range bench.Apps() {
		b, err := app.Build(bench.Auto)
		if err != nil {
			return errs, fmt.Errorf("build %s: %w", app.Name, err)
		}
		diags := rt.CheckRaces(b.W)
		nerr := analysis.CountSev(diags, analysis.SevError)
		errs += nerr
		skipped := analysis.CountSev(diags, analysis.SevInfo)
		fmt.Fprintf(w, "%-10s %d race(s), %d note(s)\n", app.Name, nerr, skipped)
		if len(diags) > 0 {
			fmt.Fprint(w, analysis.Format(diags))
		}
	}
	return errs, nil
}
