// Command daec compiles a TaskC source file, generates access versions for
// every task, and reports the compiler's decisions — the command-line face
// of the paper's transformation.
//
// Usage:
//
//	daec [-hints N=64,B=8] [-dump] [-no-simplify-cfg] [-prefetch-stores]
//	     [-force-skeleton] [-line-stride n] [-analyze [-bench]] file.tc
//
// With no file, a built-in demo (the paper's Listing 1 LU kernel) is used.
//
// -analyze runs the static DAE-contract checker instead of printing the
// transformation report: every generated access version gets a purity
// verdict (a proof that it stores to no external memory) and a static
// prefetch-coverage figure at the -hints parameter values. With -bench the
// checker runs over the paper's seven benchmarks instead of a source file,
// adding the static-vs-dynamic coverage cross-validation and the polyhedral
// task-overlap race check over every scheduled batch; daec exits nonzero if
// any error-severity diagnostic is produced.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dae"
)

const demoSrc = `
// Listing 1(a) of the paper: the LU kernel.
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i+1; j < N; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < N; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}
`

func main() {
	hints := flag.String("hints", "", "comma-separated parameter hints, e.g. N=64,B=8 (enable the hull profitability test)")
	dump := flag.Bool("dump", false, "print the full module IR (tasks and generated access versions)")
	noSimplify := flag.Bool("no-simplify-cfg", false, "keep loop-body conditionals in skeleton access versions")
	stores := flag.Bool("prefetch-stores", false, "also prefetch written locations")
	forceSkel := flag.Bool("force-skeleton", false, "disable the polyhedral path")
	lineStride := flag.Int("line-stride", 0, "stride the innermost affine prefetch loop by this many elements (8 = one per cache line)")
	fromIR := flag.Bool("ir", false, "treat the input as textual IR (as printed by -dump) instead of TaskC source")
	analyze := flag.Bool("analyze", false, "run the static DAE-contract checker (purity, coverage, wcec/rwcec; with -bench also races and the WCEC soundness gate)")
	benchMode := flag.Bool("bench", false, "with -analyze: check the seven paper benchmarks instead of a source file")
	flag.Parse()

	if *analyze && *benchMode {
		errs, err := analyzeBenchmarks(os.Stdout)
		if err != nil {
			fatal(err)
		}
		if errs > 0 {
			os.Exit(1)
		}
		return
	}

	src := demoSrc
	name := "demo"
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
		name = flag.Arg(0)
	}

	var mod *dae.Module
	var err error
	if *fromIR {
		mod, err = dae.ParseIR(src)
	} else {
		mod, err = dae.Compile(src, name)
	}
	if err != nil {
		fatal(err)
	}

	opts := dae.DefaultOptions()
	opts.SimplifyCFG = !*noSimplify
	opts.PrefetchStores = *stores
	opts.ForceSkeleton = *forceSkel
	opts.CacheLineStride = *lineStride
	if *hints != "" {
		opts.ParamHints = map[string]int64{}
		for _, kv := range strings.Split(*hints, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad hint %q (want name=value)", kv))
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad hint value in %q: %v", kv, err))
			}
			opts.ParamHints[parts[0]] = v
		}
	} else {
		opts.HullTest = false
	}

	results, err := dae.GenerateAccess(mod, opts)
	if err != nil {
		fatal(err)
	}

	if *analyze {
		if errs := analyzeModule(os.Stdout, results, opts.ParamHints); errs > 0 {
			os.Exit(1)
		}
		return
	}

	if *dump {
		// IR only, suitable for feeding back through -ir.
		fmt.Print(mod)
		return
	}

	var names []string
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := results[n]
		fmt.Printf("task @%s: strategy=%s loops=%d/%d", n, r.Strategy, r.AffineLoops, r.TotalLoops)
		if r.Strategy == dae.StrategyAffine {
			fmt.Printf(" classes=%d nests=%d", r.Classes, r.MergedNests)
			if r.NOrig > 0 {
				fmt.Printf(" NConvUn=%d NOrig=%d", r.NConvUn, r.NOrig)
			}
		}
		if r.Reason != "" {
			fmt.Printf(" (%s)", r.Reason)
		}
		fmt.Println()
		if r.Access != nil {
			fmt.Printf("\n%s\n", r.Access)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daec:", err)
	os.Exit(1)
}
