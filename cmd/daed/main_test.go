package main

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dae/internal/daed"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the server goroutine writes
// while the test polls.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunBadFlag(t *testing.T) {
	var out, errb syncBuffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunRejectsArgs(t *testing.T) {
	var out, errb syncBuffer
	if code := run(context.Background(), []string{"extra"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestServeAndShutdown boots the daemon on an ephemeral port, serves one
// simulate request through it, and shuts it down gracefully.
func TestServeAndShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full server")
	}
	var out, errb syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-dir", t.TempDir(), "-workers", "2"}, &out, &errb)
	}()

	// Wait for the serving line to learn the bound address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout:\n%s\nstderr:\n%s", out.String(), errb.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "daed: serving on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	c := &daed.Client{Base: base}
	resp, err := c.Simulate(context.Background(), &daed.SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("simulate against daemon: %v", err)
	}
	if resp.Report == "" {
		t.Error("daemon returned an empty report")
	}
	st, err := c.Stats(context.Background())
	if err != nil || st.Requests == 0 {
		t.Errorf("stats = %+v, %v; want requests > 0", st, err)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Errorf("no shutdown message; stdout:\n%s", out.String())
	}
}

func TestRunJoinRequiresNode(t *testing.T) {
	var out, errb syncBuffer
	if code := run(context.Background(), []string{"-join", "http://127.0.0.1:1"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-join requires -node") {
		t.Fatalf("missing diagnostic; stderr:\n%s", errb.String())
	}
}

// startDaemon boots one daemon via run and returns its base URL plus the
// channel its exit code lands on.
func startDaemon(t *testing.T, ctx context.Context, args []string, out, errb *syncBuffer) (string, chan int) {
	t.Helper()
	done := make(chan int, 1)
	go func() { done <- run(ctx, args, out, errb) }()
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout:\n%s\nstderr:\n%s", out.String(), errb.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "daed: serving on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, done
}

// freePort reserves an ephemeral loopback port and releases it for the
// daemon to claim. The window between close and re-listen is racy in
// principle; in a test process it is reliable.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestJoinFlagGrowsCluster: a first node boots as a cluster of one, a
// second boots with -join against it, and both converge on a two-member
// view at the next epoch.
func TestJoinFlagGrowsCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two full servers")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrA, addrB := freePort(t), freePort(t)
	urlA, urlB := "http://"+addrA, "http://"+addrB

	var outA, errA, outB, errB syncBuffer
	_, doneA := startDaemon(t, ctx, []string{
		"-addr", addrA, "-node", urlA, "-workers", "2", "-repair-interval", "200ms",
	}, &outA, &errA)
	_, doneB := startDaemon(t, ctx, []string{
		"-addr", addrB, "-node", urlB, "-workers", "2", "-repair-interval", "200ms",
		"-join", urlA,
	}, &outB, &errB)

	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged\nA stdout:\n%s\nB stdout:\n%s\nB stderr:\n%s",
				outA.String(), outB.String(), errB.String())
		}
		if strings.Contains(outB.String(), "joined cluster via "+urlA) {
			ra, errRA := (&daed.Client{Base: urlA}).Ring(context.Background())
			rb, errRB := (&daed.Client{Base: urlB}).Ring(context.Background())
			if errRA == nil && errRB == nil &&
				ra.Epoch == rb.Epoch && len(ra.Members) == 2 && len(rb.Members) == 2 {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	for _, done := range []chan int{doneA, doneB} {
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit code = %d, want 0\nA stderr:\n%s\nB stderr:\n%s", code, errA.String(), errB.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatal("a daemon did not shut down")
		}
	}
}
