package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"dae/internal/daed"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the server goroutine writes
// while the test polls.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunBadFlag(t *testing.T) {
	var out, errb syncBuffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunRejectsArgs(t *testing.T) {
	var out, errb syncBuffer
	if code := run(context.Background(), []string{"extra"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestServeAndShutdown boots the daemon on an ephemeral port, serves one
// simulate request through it, and shuts it down gracefully.
func TestServeAndShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full server")
	}
	var out, errb syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-dir", t.TempDir(), "-workers", "2"}, &out, &errb)
	}()

	// Wait for the serving line to learn the bound address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout:\n%s\nstderr:\n%s", out.String(), errb.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "daed: serving on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	c := &daed.Client{Base: base}
	resp, err := c.Simulate(context.Background(), &daed.SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("simulate against daemon: %v", err)
	}
	if resp.Report == "" {
		t.Error("daemon returned an empty report")
	}
	st, err := c.Stats(context.Background())
	if err != nil || st.Requests == 0 {
		t.Errorf("stats = %+v, %v; want requests > 0", st, err)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Errorf("no shutdown message; stdout:\n%s", out.String())
	}
}
