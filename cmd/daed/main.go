// Command daed serves the compile/simulate pipeline as a persistent
// HTTP/JSON service. One long-running process amortizes compilation, access
// generation, trace collection, and evaluation across requests:
//
//   - A content-addressed artifact store (and the trace cache beneath it)
//     persists under -dir, so a warm server answers repeat requests without
//     re-simulating — across restarts, and shared with any daerun/daebench
//     pointed at the same directory.
//   - Concurrent identical requests collapse onto a single pipeline
//     execution (singleflight); a client that disconnects releases only its
//     own interest, and the execution aborts when the last client is gone.
//   - An admission-controlled job queue bounds concurrent executions
//     (-workers) and the backlog (-queue-depth); beyond that the server
//     sheds load with 429 + Retry-After instead of letting latency collapse.
//   - Per-tenant quarantine (X-Dae-Tenant) contains one tenant's faults to
//     that tenant's requests; the process and other tenants stay healthy.
//
// Endpoints: POST /v1/simulate, POST /v1/compile, POST /v1/trace,
// GET /v1/stats, GET /v1/ring, POST /v1/members, DELETE /v1/quarantine,
// GET /healthz.
//
// Usage:
//
//	daed [-addr :8787] [-dir path] [-workers n] [-queue-depth n]
//	     [-run-workers n] [-default-timeout d] [-max-timeout d]
//	     [-max-run-time d] [-max-steps n] [-store-max-bytes n]
//	     [-node url [-peers url1,url2] [-replicas r] [-join url]]
//	     [-repair-interval d] [-drain-timeout d]
//
// Cluster mode: give every node its own advertised URL (-node) and either
// the other members' URLs (-peers) for a static boot, or -join with any
// live member's URL to enter an existing cluster at the next membership
// epoch (a -node with neither is a cluster of one that others can join).
// Content keys shard across the members on a shared consistent-hash ring
// with replication factor -replicas; nodes proxy requests for keys they do
// not own, replicate artifacts write-behind, and converge divergence
// through the anti-entropy repair loop (-repair-interval) and read-repair.
// On SIGTERM — or on being removed via POST /v1/members — a node drains
// gracefully: refusing new work with 503 + Retry-After, finishing
// in-flight requests, and handing hot artifacts to the surviving owners
// before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dae/internal/daed"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so startup, serving, and
// graceful shutdown are testable. It serves until ctx is canceled.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("daed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8787", "listen address (host:port; port 0 picks a free port)")
	dir := fs.String("dir", "", "persist artifacts and traces under this directory (empty = memory only)")
	workers := fs.Int("workers", 0, "max concurrent pipeline executions (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "max executions waiting for a worker before 429s (0 = default 64, -1 = none)")
	runWorkers := fs.Int("run-workers", 0, "per-request collection parallelism (0 = 1)")
	defaultTimeout := fs.Duration("default-timeout", 0, "request wait bound when the request names none (0 = 60s)")
	maxTimeout := fs.Duration("max-timeout", 0, "ceiling on client-requested waits (0 = 5m)")
	maxRunTime := fs.Duration("max-run-time", 0, "hard bound on one pipeline execution (0 = 10m)")
	maxSteps := fs.Int64("max-steps", 0, "server-wide interpreter step-budget ceiling per task (0 = no limit)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "disk budget for the artifact store; LRU eviction above it (0 = unbounded)")
	node := fs.String("node", "", "this node's advertised base URL, e.g. http://10.0.0.1:8787 (cluster mode)")
	peers := fs.String("peers", "", "comma-separated base URLs of the other cluster members")
	replicas := fs.Int("replicas", 0, "copies of each artifact across the cluster (0 = 2, clamped to membership)")
	joinURL := fs.String("join", "", "URL of a live cluster member to join at startup (requires -node)")
	repairInterval := fs.Duration("repair-interval", 0, "anti-entropy repair period (0 = 30s, negative = disabled)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain at shutdown")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "daed: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}
	if len(peerList) > 0 && *node == "" {
		fmt.Fprintln(stderr, "daed: -peers requires -node (this node's advertised URL)")
		return 2
	}
	if *joinURL != "" && *node == "" {
		fmt.Fprintln(stderr, "daed: -join requires -node (this node's advertised URL)")
		return 2
	}

	srv := daed.New(daed.Config{
		Dir:            *dir,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		RunWorkers:     *runWorkers,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxRunTime:     *maxRunTime,
		MaxSteps:       *maxSteps,
		StoreMaxBytes:  *storeMaxBytes,
		Self:           strings.TrimRight(*node, "/"),
		Peers:          peerList,
		Replicas:       *replicas,
		RepairInterval: *repairInterval,
		DrainTimeout:   *drainTimeout,
		Log:            log.New(stderr, "", log.LstdFlags),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "daed:", err)
		return 1
	}
	hs := &http.Server{Handler: srv}
	fmt.Fprintf(stdout, "daed: serving on http://%s\n", ln.Addr())
	if *dir != "" {
		fmt.Fprintf(stdout, "daed: persistent store at %s\n", *dir)
	}
	if len(peerList) > 0 {
		fmt.Fprintf(stdout, "daed: cluster member %s with %d peer(s)\n", *node, len(peerList))
	}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	if *joinURL != "" {
		// Join after the listener is up: the admin's gossip of the new epoch
		// must be able to reach this node, and warmup streams arrive here.
		if err := joinCluster(ctx, strings.TrimRight(*joinURL, "/"), strings.TrimRight(*node, "/")); err != nil {
			fmt.Fprintln(stderr, "daed:", err)
			hs.Close()
			srv.Close()
			return 1
		}
		fmt.Fprintf(stdout, "daed: joined cluster via %s\n", *joinURL)
	}

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "daed:", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	// Graceful drain: flip /healthz to draining and shed new work with 503 +
	// Retry-After, finish in-flight requests, then (in cluster mode) hand hot
	// artifacts to the surviving owners. Only after the drain completes does
	// the HTTP server itself close. In-flight pipelines whose clients vanish
	// still abort through the refcounted flight cancellation.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Drain(shutdownCtx)
	if err := hs.Shutdown(shutdownCtx); err != nil {
		_ = hs.Close()
	}
	srv.Close()
	fmt.Fprintln(stdout, "daed: shut down")
	return 0
}

// joinCluster asks a live member to admit this node, retrying briefly: at
// deploy time the rest of the cluster may still be coming up.
func joinCluster(ctx context.Context, member, self string) error {
	c := &daed.Client{Base: member}
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * 500 * time.Millisecond):
			}
		}
		jctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := c.Join(jctx, self)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("join via %s: %w", member, lastErr)
}
