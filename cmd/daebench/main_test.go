package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"dae/internal/daed"
)

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunStepBudgetFailureSummary: a step budget every benchmark exceeds
// fails all 21 runs; daebench reports each with its fault class and exits
// nonzero instead of crashing mid-collection.
func TestRunStepBudgetFailureSummary(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-max-steps", "1", "-exp", "strategies"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	msg := errb.String()
	for _, want := range []string{"21 run(s) failed", "step-budget", "LU", "compiler-dae"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure summary missing %q:\n%s", want, msg)
		}
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty on failure: %q", out.String())
	}
}

func TestRunBadEngine(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-engine", "jit"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown engine") {
		t.Errorf("stderr should name the bad engine:\n%s", errb.String())
	}
}

// TestRunOpStats: -opstats replaces the experiments with the dynamic op and
// op-pair histogram of the whole collection, measured on the tree engine.
func TestRunOpStats(t *testing.T) {
	if testing.Short() {
		t.Skip("collects all benchmarks")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-opstats"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	msg := out.String()
	for _, want := range []string{"dynamic op histogram", "top op pairs", "loadF", "condbr"} {
		if !strings.Contains(msg, want) {
			t.Errorf("opstats output missing %q:\n%s", want, msg)
		}
	}
}

func TestRunStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("collects all benchmarks")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "strategies"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "LU") {
		t.Errorf("strategy report missing benchmarks:\n%s", out.String())
	}
}

// TestExitCodes is the table-driven contract for daebench's exit statuses:
// 0 clean, 1 failed runs/experiments, 2 usage, 3 completed degraded.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		want   int
		stderr []string
		stdout []string
		heavy  bool // collects all 21 runs; skipped under -short
	}{
		{name: "usage-bad-flag", args: []string{"-no-such-flag"}, want: 2},
		{name: "usage-bad-degrade", args: []string{"-degrade", "never"}, want: 2,
			stderr: []string{"degrade"}},
		{name: "usage-bad-inject", args: []string{"-inject", "no-such-site,,,,error"}, want: 2,
			stderr: []string{"inject"}},
		{name: "fault-budget", args: []string{"-max-steps", "1", "-exp", "strategies"}, want: 1,
			stderr: []string{"run(s) failed", "step-budget"}},
		{name: "clean", args: []string{"-exp", "strategies"}, want: 0, heavy: true,
			stdout: []string{"Access-version generation decisions"}},
		{name: "degraded-access-fault", heavy: true,
			args: []string{"-exp", "table1", "-inject", "access-phase,LibQ,compiler-dae,,panic!"}, want: 3,
			stderr: []string{"completed degraded", "LibQ", "compiler-dae", "panic"},
			stdout: []string{"Table 1", "forfeit the DVFS benefit"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("collects all benchmarks")
			}
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != tc.want {
				t.Fatalf("exit code = %d, want %d; stderr:\n%s", code, tc.want, errb.String())
			}
			for _, want := range tc.stderr {
				if !strings.Contains(errb.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, errb.String())
				}
			}
			for _, want := range tc.stdout {
				if !strings.Contains(out.String(), want) {
					t.Errorf("stdout missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

// TestExperimentFailureDoesNotMaskOthers: with -exp all, a failure inside
// one experiment (here the refined re-collection, failed via an access-gen
// injection that only that experiment reaches) must not suppress the output
// of the experiments that succeeded.
func TestExperimentFailureDoesNotMaskOthers(t *testing.T) {
	if testing.Short() {
		t.Skip("collects all benchmarks")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "all", "-inject", "access-gen,,,,error"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"Table 1", "Figure 3", "Access-version generation decisions"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("surviving experiment output missing %q", want)
		}
	}
	for _, want := range []string{"refined", "experiment(s) failed"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
	}
}

// TestRemoteByteIdentical is the remote-mode acceptance test: daebench
// -server fetches the trace sets from a daed instance and renders the same
// experiment tables byte-identically to a local run — one formatter, one
// trace semantics, with the server's artifact store in between.
func TestRemoteByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("collects all benchmarks twice")
	}
	srv := daed.New(daed.Config{Workers: 2, Dir: t.TempDir()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var local, localErr bytes.Buffer
	if code := run([]string{"-exp", "table1"}, &local, &localErr); code != 0 {
		t.Fatalf("local run exit = %d; stderr:\n%s", code, localErr.String())
	}
	var remote, remoteErr bytes.Buffer
	if code := run([]string{"-exp", "table1", "-server", ts.URL}, &remote, &remoteErr); code != 0 {
		t.Fatalf("remote run exit = %d; stderr:\n%s", code, remoteErr.String())
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Fatalf("remote stdout differs from local:\nlocal:\n%q\nremote:\n%q",
			local.String(), remote.String())
	}

	// A second remote run answers from the warm store, still identically.
	var warm, warmErr bytes.Buffer
	if code := run([]string{"-exp", "table1", "-server", ts.URL}, &warm, &warmErr); code != 0 {
		t.Fatalf("warm remote run exit = %d; stderr:\n%s", code, warmErr.String())
	}
	if !bytes.Equal(local.Bytes(), warm.Bytes()) {
		t.Fatal("warm remote stdout differs from local")
	}
}

// TestRemoteRejectsLocalFlags: local-simulation flags have no remote
// meaning and are usage errors with -server.
func TestRemoteRejectsLocalFlags(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-server", "http://localhost:1", "-cache-dir", "/tmp/x"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-cache-dir") {
		t.Errorf("stderr does not name the offending flag: %q", errb.String())
	}
}
