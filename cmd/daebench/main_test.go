package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunStepBudgetFailureSummary: a step budget every benchmark exceeds
// fails all 21 runs; daebench reports each with its fault class and exits
// nonzero instead of crashing mid-collection.
func TestRunStepBudgetFailureSummary(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-max-steps", "1", "-exp", "strategies"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	msg := errb.String()
	for _, want := range []string{"21 run(s) failed", "step-budget", "LU", "compiler-dae"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure summary missing %q:\n%s", want, msg)
		}
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty on failure: %q", out.String())
	}
}

func TestRunStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("collects all benchmarks")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "strategies"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "LU") {
		t.Errorf("strategy report missing benchmarks:\n%s", out.String())
	}
}
