// Command daebench regenerates the paper's evaluation artifacts from the
// simulated machine: Table 1, Figure 3 (a/b/c), Figure 4 (Cholesky, FFT,
// LibQ), and the §6.1 zero-transition-latency projection.
//
// Usage:
//
//	daebench [-exp table1|fig3|fig4|zerolat|refined|strategies|all] [-cores 4] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dae/internal/bench"
	daepass "dae/internal/dae"
	"dae/internal/dvfs"
	"dae/internal/eval"
	"dae/internal/rt"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig3, fig4, zerolat, refined, strategies, all")
	cores := flag.Int("cores", 4, "number of simulated cores")
	csvDir := flag.String("csv", "", "also write the selected experiments as CSV files into this directory")
	flag.Parse()

	cfg := rt.DefaultTraceConfig()
	cfg.Cores = *cores
	fmt.Fprintf(os.Stderr, "daebench: tracing 7 benchmarks x 3 versions on %d cores...\n", cfg.Cores)
	data, err := eval.CollectAll(cfg)
	if err != nil {
		fatal(err)
	}
	m := rt.DefaultMachine()

	want := func(name string) bool { return *exp == name || *exp == "all" }

	writeCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "daebench: wrote %s\n", filepath.Join(*csvDir, name))
	}

	if want("table1") {
		rows := eval.Table1(data, m)
		fmt.Print(eval.FormatTable1(rows), "\n")
		writeCSV("table1.csv", func(f *os.File) error { return eval.WriteTable1CSV(f, rows) })
	}
	if want("fig3") {
		rows := eval.Fig3(data, m)
		fmt.Print(eval.FormatFig3(rows, "Time"), "\n")
		fmt.Print(eval.FormatFig3(rows, "Energy"), "\n")
		fmt.Print(eval.FormatFig3(rows, "EDP"), "\n")
		fmt.Print(eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (500ns transitions)"), "\n")
		for _, metric := range []string{"Time", "Energy", "EDP"} {
			metric := metric
			writeCSV("fig3_"+metric+".csv", func(f *os.File) error { return eval.WriteFig3CSV(f, rows, metric) })
		}
	}
	if want("fig4") {
		for _, name := range []string{"Cholesky", "FFT", "LibQ"} {
			for _, d := range data {
				if d.Name == name {
					p := eval.Fig4(d, m)
					fmt.Print(eval.FormatFig4(p), "\n")
					writeCSV("fig4_"+name+".csv", func(f *os.File) error { return eval.WriteFig4CSV(f, p) })
				}
			}
		}
	}
	if want("zerolat") {
		ideal := m
		ideal.DVFS = dvfs.Ideal()
		rows := eval.Fig3(data, ideal)
		fmt.Print(eval.FormatFig3(rows, "EDP"), "\n")
		fmt.Print(eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (zero-latency transitions)"), "\n")
	}
	if want("refined") {
		// The §7 future-work pipeline: compiler DAE with profile-guided
		// prefetch pruning applied before tracing.
		fmt.Fprintln(os.Stderr, "daebench: re-tracing with profile-refined access versions...")
		var refined []*eval.AppData
		for _, app := range bench.Apps() {
			d, err := eval.CollectRefined(app, cfg, daepass.DefaultRefine(), 4)
			if err != nil {
				fatal(err)
			}
			refined = append(refined, d)
		}
		rows := eval.Fig3(refined, m)
		fmt.Print(eval.FormatFig3(rows, "EDP"), "\n")
		fmt.Print(eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (refined, 500ns)"), "\n")
	}
	if want("strategies") {
		fmt.Print(eval.FormatStrategies(data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daebench:", err)
	os.Exit(1)
}
