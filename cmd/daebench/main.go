// Command daebench regenerates the paper's evaluation artifacts from the
// simulated machine: Table 1, Figure 3 (a/b/c), Figure 4 (Cholesky, FFT,
// LibQ), and the §6.1 zero-transition-latency projection.
//
// Traces are collected once through a parallel, cached pipeline (-j bounds
// the worker count, -cache-dir persists traces across invocations) and every
// experiment evaluates the shared traces; independent experiments run
// concurrently and print in a fixed order.
//
// Usage:
//
//	daebench [-exp table1|fig3|fig4|zerolat|refined|strategies|all] [-cores 4]
//	         [-csv dir] [-j N] [-cache-dir dir] [-cpuprofile f] [-memprofile f]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"

	daepass "dae/internal/dae"
	"dae/internal/dvfs"
	"dae/internal/eval"
	"dae/internal/rt"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig3, fig4, zerolat, refined, strategies, all")
	cores := flag.Int("cores", 4, "number of simulated cores")
	csvDir := flag.String("csv", "", "also write the selected experiments as CSV files into this directory")
	jobs := flag.Int("j", 0, "max concurrent trace collections and experiments (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persist collected traces in this directory and reuse them across runs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	cfg := rt.DefaultTraceConfig()
	cfg.Cores = *cores
	// The in-process cache is always on: it lets the refined experiment
	// reuse the coupled and manual traces of the main collection. -cache-dir
	// additionally persists entries across daebench invocations.
	opts := eval.CollectOptions{Workers: *jobs, Cache: eval.NewTraceCache(*cacheDir)}
	fmt.Fprintf(os.Stderr, "daebench: tracing 7 benchmarks x 3 versions on %d simulated cores (%d workers)...\n",
		cfg.Cores, effectiveWorkers(*jobs))
	data, err := eval.CollectAllWith(cfg, opts)
	if err != nil {
		fatal(err)
	}
	m := rt.DefaultMachine()

	want := func(name string) bool { return *exp == name || *exp == "all" }

	writeCSV := func(name string, write func(f *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := write(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "daebench: wrote %s\n", filepath.Join(*csvDir, name))
		return nil
	}

	// Experiments are independent passes over the shared traces; each
	// renders into its own buffer so they can run concurrently and still
	// print in the fixed order below.
	type experiment struct {
		name string
		run  func(w io.Writer) error
	}
	var exps []experiment
	if want("table1") {
		exps = append(exps, experiment{"table1", func(w io.Writer) error {
			rows := eval.Table1(data, m)
			fmt.Fprint(w, eval.FormatTable1(rows), "\n")
			return writeCSV("table1.csv", func(f *os.File) error { return eval.WriteTable1CSV(f, rows) })
		}})
	}
	if want("fig3") {
		exps = append(exps, experiment{"fig3", func(w io.Writer) error {
			rows := eval.Fig3(data, m)
			fmt.Fprint(w, eval.FormatFig3(rows, "Time"), "\n")
			fmt.Fprint(w, eval.FormatFig3(rows, "Energy"), "\n")
			fmt.Fprint(w, eval.FormatFig3(rows, "EDP"), "\n")
			fmt.Fprint(w, eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (500ns transitions)"), "\n")
			for _, metric := range []string{"Time", "Energy", "EDP"} {
				if err := writeCSV("fig3_"+metric+".csv", func(f *os.File) error { return eval.WriteFig3CSV(f, rows, metric) }); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if want("fig4") {
		exps = append(exps, experiment{"fig4", func(w io.Writer) error {
			for _, name := range []string{"Cholesky", "FFT", "LibQ"} {
				for _, d := range data {
					if d.Name == name {
						p := eval.Fig4(d, m)
						fmt.Fprint(w, eval.FormatFig4(p), "\n")
						if err := writeCSV("fig4_"+name+".csv", func(f *os.File) error { return eval.WriteFig4CSV(f, p) }); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}})
	}
	if want("zerolat") {
		exps = append(exps, experiment{"zerolat", func(w io.Writer) error {
			ideal := m
			ideal.DVFS = dvfs.Ideal()
			rows := eval.Fig3(data, ideal)
			fmt.Fprint(w, eval.FormatFig3(rows, "EDP"), "\n")
			fmt.Fprint(w, eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (zero-latency transitions)"), "\n")
			return nil
		}})
	}
	if want("refined") {
		exps = append(exps, experiment{"refined", func(w io.Writer) error {
			// The §7 future-work pipeline: compiler DAE with profile-guided
			// prefetch pruning applied before tracing. Only the compiler-DAE
			// decoupled runs differ, so the shared cache serves the coupled
			// and manual traces without re-simulation.
			fmt.Fprintln(os.Stderr, "daebench: re-tracing with profile-refined access versions...")
			ropts := opts
			ropts.Refine = &eval.RefineSpec{Options: daepass.DefaultRefine(), PerTask: 4}
			refined, err := eval.CollectAllWith(cfg, ropts)
			if err != nil {
				return err
			}
			rows := eval.Fig3(refined, m)
			fmt.Fprint(w, eval.FormatFig3(rows, "EDP"), "\n")
			fmt.Fprint(w, eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (refined, 500ns)"), "\n")
			return nil
		}})
	}
	if want("strategies") {
		exps = append(exps, experiment{"strategies", func(w io.Writer) error {
			fmt.Fprint(w, eval.FormatStrategies(data))
			return nil
		}})
	}

	bufs := make([]bytes.Buffer, len(exps))
	errs := make([]error, len(exps))
	sem := make(chan struct{}, effectiveWorkers(*jobs))
	var wg sync.WaitGroup
	for i := range exps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = exps[i].run(&bufs[i])
		}(i)
	}
	wg.Wait()
	for i := range exps {
		if errs[i] != nil {
			fatal(fmt.Errorf("%s: %w", exps[i].name, errs[i]))
		}
		os.Stdout.Write(bufs[i].Bytes())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// effectiveWorkers resolves the -j flag's default.
func effectiveWorkers(j int) int {
	if j > 0 {
		return j
	}
	return runtime.GOMAXPROCS(0)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daebench:", err)
	os.Exit(1)
}
