// Command daebench regenerates the paper's evaluation artifacts from the
// simulated machine: Table 1, Figure 3 (a/b/c), Figure 4 (Cholesky, FFT,
// LibQ), and the §6.1 zero-transition-latency projection.
//
// Traces are collected once through a parallel, cached pipeline (-j bounds
// the worker count, -cache-dir persists traces across invocations) and every
// experiment evaluates the shared traces; independent experiments run
// concurrently and print in a fixed order.
//
// The pipeline is hardened: -timeout bounds the whole invocation, -run-timeout
// bounds each of the 21 (benchmark, version) collections, and -max-steps
// bounds each simulated task's interpreter steps. A run that fails — trap,
// budget, timeout, panic — does not take the process down mid-collection;
// daebench finishes the surviving runs, prints a per-run failure summary
// (app, run kind, fault class; -v adds captured panic stacks), and exits
// nonzero. With -exp all, a failing experiment does not stop the others:
// every surviving experiment prints and the failures are reported together.
//
// -degrade selects the runtime supervision mode: "access" (default) contains
// access-phase faults by quarantining the task type's access variant and
// re-running it coupled; "full" additionally contains execute-phase faults
// to the failing task; "off" aborts the run on any fault (the legacy
// behavior). A collection that completes degraded prints a summary table
// naming the quarantined task types and exits with status 3.
//
// Exit status: 0 clean, 1 failed runs or experiments, 2 usage, 3 completed
// degraded.
//
// Usage:
//
//	daebench [-exp table1|fig3|fig4|zerolat|refined|strategies|all] [-cores 4]
//	         [-csv dir] [-j N] [-cache-dir dir] [-timeout d] [-run-timeout d]
//	         [-max-steps n] [-degrade off|access|full] [-inject rules] [-v]
//	         [-engine bytecode|tree] [-opstats] [-cpuprofile f] [-memprofile f]
//	         [-server url[,url...] [-tenant name]]
//
// -engine selects the interpreter execution engine: the register-bytecode VM
// (default) or the original compiled-op interpreter ("tree"), kept as a
// differential oracle — both produce byte-identical traces. -opstats skips
// the experiments and instead prints the dynamic op and op-pair histogram of
// the whole collection, measured on the tree engine; it is the measurement
// behind the bytecode engine's superinstruction selection.
//
// -server collects the traces remotely from a daed server (or cluster:
// comma-separate the URLs) instead of simulating locally; the experiment
// tables are computed and rendered client-side from the fetched traces, so
// the output is byte-identical to a local run of the same flags. A warm
// server answers from its artifact store without re-simulating. -tenant
// names the requesting tenant for the server's per-tenant quarantine.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"

	"dae/internal/bench"
	daepass "dae/internal/dae"
	"dae/internal/daed"
	"dae/internal/daed/client"
	"dae/internal/dvfs"
	"dae/internal/eval"
	"dae/internal/fault/inject"
	"dae/internal/interp"
	"dae/internal/rt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the exit paths are testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("daebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: table1, fig3, fig4, zerolat, refined, strategies, all")
	cores := fs.Int("cores", 4, "number of simulated cores")
	csvDir := fs.String("csv", "", "also write the selected experiments as CSV files into this directory")
	jobs := fs.Int("j", 0, "max concurrent trace collections and experiments (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "persist collected traces in this directory and reuse them across runs")
	timeout := fs.Duration("timeout", 0, "abort the whole invocation after this duration (0 = no limit)")
	runTimeout := fs.Duration("run-timeout", 0, "abort any single (benchmark, version) collection after this duration (0 = no limit)")
	maxSteps := fs.Int64("max-steps", 0, "abort any simulated task after this many interpreter steps (0 = no limit)")
	degrade := fs.String("degrade", "access", "runtime supervision mode: off (abort on fault), access (quarantine faulting access variants), full (also contain execute faults)")
	injectSpec := fs.String("inject", "", "fault-injection rules, \"site,app,kind,task,mode[,trap]\" separated by ';' (testing)")
	verbose := fs.Bool("v", false, "verbose failure reports (include captured panic stacks)")
	engine := fs.String("engine", "bytecode", "interpreter execution engine: bytecode (register VM) or tree (compiled-op oracle)")
	opstats := fs.Bool("opstats", false, "print the dynamic op/op-pair histogram of the collection (tree engine) instead of running experiments")
	serverURL := fs.String("server", "", "collect traces remotely from daed at this base URL; comma-separate for a cluster")
	tenant := fs.String("tenant", "", "tenant identity sent to the daed server (with -server)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "daebench:", err)
		return 1
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "daebench:", err)
		return 2
	}
	degradeMode, err := rt.ParseDegradeMode(*degrade)
	if err != nil {
		return usage(err)
	}
	injectRules, err := inject.ParseRules(*injectSpec)
	if err != nil {
		return usage(err)
	}
	engineKind, err := interp.ParseEngine(*engine)
	if err != nil {
		return usage(err)
	}
	var cl *client.Cluster
	if *serverURL != "" {
		for name, set := range map[string]bool{
			"-cache-dir": *cacheDir != "", "-run-timeout": *runTimeout != 0,
			"-inject": *injectSpec != "", "-opstats": *opstats,
		} {
			if set {
				fmt.Fprintf(stderr, "daebench: %s configures the local simulation; it has no meaning with -server\n", name)
				return 2
			}
		}
		cl = client.New(client.Config{Nodes: splitNodes(*serverURL)})
	}

	// daebench is a short-lived batch process whose footprint is dominated by
	// trace buffers that live to the end anyway; a lazier GC pace trades a
	// bounded amount of heap headroom for collection passes that otherwise
	// burn a measurable slice of a cold run (visible as GC work in the
	// -cpuprofile output). Benchmarks of library packages are unaffected.
	debug.SetGCPercent(400)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := rt.DefaultTraceConfig()
	cfg.Cores = *cores
	cfg.MaxSteps = *maxSteps
	cfg.Degrade = degradeMode
	cfg.Engine = engineKind

	if *opstats {
		fmt.Fprintf(stderr, "daebench: collecting the dynamic op histogram (7 benchmarks x 3 versions, tree engine)...\n")
		st, err := eval.CollectOpStats(ctx, nil, cfg, eval.CollectOptions{RunTimeout: *runTimeout})
		if err != nil {
			return failRuns(stderr, "daebench", err, *verbose)
		}
		fmt.Fprint(stdout, st.Format())
		return 0
	}
	// The in-process cache is always on: it lets the refined experiment
	// reuse the coupled and manual traces of the main collection. -cache-dir
	// additionally persists entries across daebench invocations.
	opts := eval.CollectOptions{
		Workers:    *jobs,
		Cache:      eval.NewTraceCache(*cacheDir),
		RunTimeout: *runTimeout,
	}
	if len(injectRules) > 0 {
		in := inject.New(injectRules...)
		opts.Inject = in.Hook()
		opts.InjectPhase = in.PhaseFunc()
	}
	// collect gathers the full trace set — simulated locally or fetched from
	// the cluster; the refined experiment re-collects with profile-guided
	// prefetch pruning enabled.
	collect := func(refine bool) ([]*eval.AppData, error) {
		if cl != nil {
			tmpl := daed.TraceRequest{
				Cores: *cores, Refine: refine, MaxSteps: *maxSteps,
				Degrade: *degrade, Engine: *engine, TimeoutMs: timeout.Milliseconds(),
			}
			return collectRemote(ctx, cl, *tenant, tmpl, effectiveWorkers(*jobs))
		}
		o := opts
		if refine {
			o.Refine = &eval.RefineSpec{Options: daepass.DefaultRefine(), PerTask: 4}
		}
		return eval.CollectAllWith(ctx, cfg, o)
	}
	if cl != nil {
		fmt.Fprintf(stderr, "daebench: fetching 7 benchmarks x 3 versions from %s...\n", *serverURL)
	} else {
		fmt.Fprintf(stderr, "daebench: tracing 7 benchmarks x 3 versions on %d simulated cores (%d workers)...\n",
			cfg.Cores, effectiveWorkers(*jobs))
	}
	data, err := collect(false)
	if err != nil {
		return failRuns(stderr, "daebench", err, *verbose)
	}
	m := rt.DefaultMachine()

	want := func(name string) bool { return *exp == name || *exp == "all" }

	writeCSV := func(name string, write func(f *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := write(f); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "daebench: wrote %s\n", filepath.Join(*csvDir, name))
		return nil
	}

	// Experiments are independent passes over the shared traces; each
	// renders into its own buffer so they can run concurrently and still
	// print in the fixed order below.
	type experiment struct {
		name string
		run  func(w io.Writer) error
	}
	var exps []experiment
	if want("table1") {
		exps = append(exps, experiment{"table1", func(w io.Writer) error {
			rows := eval.Table1(data, m)
			fmt.Fprint(w, eval.FormatTable1(rows), "\n")
			return writeCSV("table1.csv", func(f *os.File) error { return eval.WriteTable1CSV(f, rows) })
		}})
	}
	if want("fig3") {
		exps = append(exps, experiment{"fig3", func(w io.Writer) error {
			rows := eval.Fig3(data, m)
			fmt.Fprint(w, eval.FormatFig3(rows, "Time"), "\n")
			fmt.Fprint(w, eval.FormatFig3(rows, "Energy"), "\n")
			fmt.Fprint(w, eval.FormatFig3(rows, "EDP"), "\n")
			fmt.Fprint(w, eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (500ns transitions)"), "\n")
			for _, metric := range []string{"Time", "Energy", "EDP"} {
				if err := writeCSV("fig3_"+metric+".csv", func(f *os.File) error { return eval.WriteFig3CSV(f, rows, metric) }); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if want("fig4") {
		exps = append(exps, experiment{"fig4", func(w io.Writer) error {
			for _, name := range []string{"Cholesky", "FFT", "LibQ"} {
				for _, d := range data {
					if d.Name == name {
						p := eval.Fig4(d, m)
						fmt.Fprint(w, eval.FormatFig4(p), "\n")
						if err := writeCSV("fig4_"+name+".csv", func(f *os.File) error { return eval.WriteFig4CSV(f, p) }); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}})
	}
	if want("zerolat") {
		exps = append(exps, experiment{"zerolat", func(w io.Writer) error {
			ideal := m
			ideal.DVFS = dvfs.Ideal()
			rows := eval.Fig3(data, ideal)
			fmt.Fprint(w, eval.FormatFig3(rows, "EDP"), "\n")
			fmt.Fprint(w, eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (zero-latency transitions)"), "\n")
			return nil
		}})
	}
	if want("refined") {
		exps = append(exps, experiment{"refined", func(w io.Writer) error {
			// The §7 future-work pipeline: compiler DAE with profile-guided
			// prefetch pruning applied before tracing. Only the compiler-DAE
			// decoupled runs differ, so the shared cache serves the coupled
			// and manual traces without re-simulation.
			fmt.Fprintln(stderr, "daebench: re-tracing with profile-refined access versions...")
			refined, err := collect(true)
			if err != nil {
				return err
			}
			rows := eval.Fig3(refined, m)
			fmt.Fprint(w, eval.FormatFig3(rows, "EDP"), "\n")
			fmt.Fprint(w, eval.FormatHeadline(eval.ComputeHeadline(rows), "headline (refined, 500ns)"), "\n")
			return nil
		}})
	}
	if want("strategies") {
		exps = append(exps, experiment{"strategies", func(w io.Writer) error {
			fmt.Fprint(w, eval.FormatStrategies(data))
			return nil
		}})
	}

	bufs := make([]bytes.Buffer, len(exps))
	errs := make([]error, len(exps))
	sem := make(chan struct{}, effectiveWorkers(*jobs))
	var wg sync.WaitGroup
	for i := range exps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = exps[i].run(&bufs[i])
		}(i)
	}
	wg.Wait()
	// A failed experiment does not mask the others: every surviving
	// experiment still prints, and all failures are reported together.
	failed := 0
	for i := range exps {
		if errs[i] != nil {
			failed++
			printFailure(stderr, "daebench", fmt.Errorf("%s: %w", exps[i].name, errs[i]), *verbose)
			continue
		}
		stdout.Write(bufs[i].Bytes())
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "daebench: %d of %d experiment(s) failed\n", failed, len(exps))
		return 1
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
	}
	if rows := eval.DegradationRows(data); len(rows) > 0 {
		fmt.Fprintf(stderr, "daebench: %s", eval.FormatDegradation(rows))
		return 3
	}
	return 0
}

// printFailure renders one failure to stderr: the per-run summary when the
// error carries typed RunErrors (with panic stacks under -v), the plain
// error otherwise.
func printFailure(stderr io.Writer, prog string, err error, verbose bool) {
	s := eval.FormatFailures(err)
	if verbose {
		s = eval.FormatFailuresVerbose(err)
	}
	if s != "" {
		fmt.Fprintf(stderr, "%s: %s", prog, s)
		if !strings.HasSuffix(s, "\n") {
			fmt.Fprintln(stderr)
		}
		return
	}
	fmt.Fprintln(stderr, prog+":", err)
}

// failRuns prints a collection failure and returns exit status 1.
func failRuns(stderr io.Writer, prog string, err error, verbose bool) int {
	printFailure(stderr, prog, err, verbose)
	return 1
}

// collectRemote fetches every benchmark's collected trace set from the daed
// cluster, preserving the canonical benchmark order so the experiments (and
// their rendered output) match a local run byte for byte.
func collectRemote(ctx context.Context, cl *client.Cluster, tenant string, tmpl daed.TraceRequest, workers int) ([]*eval.AppData, error) {
	apps := bench.Apps()
	data := make([]*eval.AppData, len(apps))
	errs := make([]error, len(apps))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			req := tmpl
			req.App = name
			resp, err := cl.Trace(ctx, tenant, &req)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", name, err)
				return
			}
			d, err := resp.Data.Decode()
			if err != nil {
				errs[i] = fmt.Errorf("%s: decoding trace set: %w", name, err)
				return
			}
			data[i] = d
		}(i, app.Name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}

// splitNodes parses a comma-separated -server value into a node list.
func splitNodes(s string) []string {
	var nodes []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, strings.TrimRight(u, "/"))
		}
	}
	return nodes
}

// effectiveWorkers resolves the -j flag's default.
func effectiveWorkers(j int) int {
	if j > 0 {
		return j
	}
	return runtime.GOMAXPROCS(0)
}
