package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"dae/internal/daed"
)

func TestRunRequiresServer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-server") {
		t.Errorf("stderr does not name the missing flag: %q", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestLoadAgainstServer drives a seeded mixed workload — hot keys, cold
// keys, cancellations, injected faults, compiles — against an in-process
// daed server and checks the accounting: every request classified, zero
// lost, and the collapse ratio reported.
func TestLoadAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a full load run")
	}
	srv := daed.New(daed.Config{Workers: 2, Dir: t.TempDir()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "load.json")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-server", ts.URL, "-n", "80", "-c", "16", "-apps", "CG",
		"-hot", "0.8", "-cancel", "0.05", "-inject", "0.05",
		"-seed", "7", "-json", jsonPath,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s\nstdout:\n%s", code, errb.String(), out.String())
	}
	for _, want := range []string{"req/s", "latency p50", "singleflight/store collapse"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("json summary: %v", err)
	}
	var sum summary
	if err := json.Unmarshal(b, &sum); err != nil {
		t.Fatalf("json summary: %v", err)
	}
	if sum.Requests != 80 {
		t.Errorf("requests = %d, want 80", sum.Requests)
	}
	if got := sum.OK + sum.Rejected + sum.Canceled + sum.Failed; got != 80 {
		t.Errorf("accounted requests = %d, want 80 (zero lost)", got)
	}
	if sum.Failed != 0 {
		t.Errorf("failed = %d, want 0", sum.Failed)
	}
	if sum.Executions == 0 || sum.CollapseRatio < 1 {
		t.Errorf("executions = %d, collapse = %.1f; want > 0 and >= 1",
			sum.Executions, sum.CollapseRatio)
	}
	// The 80% hot mix on one app must collapse most work into a handful of
	// executions.
	if sum.StoreHits+sum.Collapsed == 0 {
		t.Error("no request was served from the store or collapsed")
	}

	// Determinism: the same seed generates the same schedule (spot-check
	// via stable totals of the scheduled mix, not timing-dependent fields).
	var out2, errb2 bytes.Buffer
	if code := run(context.Background(), []string{
		"-server", ts.URL, "-n", "80", "-c", "16", "-apps", "CG",
		"-hot", "0.8", "-cancel", "0.05", "-inject", "0.05", "-seed", "7",
	}, &out2, &errb2); code != 0 {
		t.Fatalf("second run exit = %d; stderr:\n%s", code, errb2.String())
	}
}

// TestShedIsRetriedNotRejected: a 429 with a Retry-After hint is slept out
// and re-issued by the cluster client — the request ends ok, counted as a
// shed + retry, and "rejected" stays zero because the shed budget was never
// exhausted.
func TestShedIsRetriedNotRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a load run")
	}
	srv := daed.New(daed.Config{Workers: 2})
	var shedOnce atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/simulate" && shedOnce.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(&daed.ErrorResponse{
				Error: "saturated", Class: "saturated", RetryAfterMs: 5,
			})
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "load.json")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-server", ts.URL, "-n", "8", "-c", "2", "-apps", "CG",
		"-hot", "1", "-seed", "3", "-json", jsonPath,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("json summary: %v", err)
	}
	var sum summary
	if err := json.Unmarshal(b, &sum); err != nil {
		t.Fatalf("json summary: %v", err)
	}
	if sum.OK != 8 || sum.Rejected != 0 {
		t.Errorf("ok = %d, rejected = %d; want 8 ok, 0 rejected", sum.OK, sum.Rejected)
	}
	if sum.Sheds < 1 || sum.Retries < 1 {
		t.Errorf("sheds = %d, retries = %d; want >= 1 each", sum.Sheds, sum.Retries)
	}
	if !strings.Contains(out.String(), "sheds") {
		t.Errorf("report missing the sheds column:\n%s", out.String())
	}
}

func TestRunRejectsBadChurnWindow(t *testing.T) {
	for _, bad := range []string{"x", "10", "20-10", "5-5"} {
		var out, errb bytes.Buffer
		code := run(context.Background(), []string{"-server", "http://127.0.0.1:1", "-churn", bad}, &out, &errb)
		if code != 2 {
			t.Fatalf("churn window %q: exit code = %d, want 2", bad, code)
		}
		if !strings.Contains(errb.String(), "bad -churn window") {
			t.Fatalf("churn window %q: missing diagnostic; stderr:\n%s", bad, errb.String())
		}
	}
}

// TestChurnWindowColumn: the -churn window shows up as its own issued/ok
// column in both the text report and the JSON summary, and the scraped
// self-healing counters are present in the JSON.
func TestChurnWindowColumn(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a load run")
	}
	srv := daed.New(daed.Config{Workers: 2, Dir: t.TempDir()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "load.json")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-server", ts.URL, "-n", "40", "-c", "8", "-apps", "CG",
		"-hot", "1", "-seed", "3", "-churn", "10-30", "-json", jsonPath,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "churn-window 20 issued, 20 ok") {
		t.Errorf("churn column missing or wrong; stdout:\n%s", out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("json summary: %v", err)
	}
	if sum.ChurnIssued != 20 || sum.ChurnOK != 20 {
		t.Fatalf("churn = %d/%d, want 20/20", sum.ChurnOK, sum.ChurnIssued)
	}
	for _, key := range []string{"repair_pushed", "repair_dropped", "read_repairs", "warmed", "handed_off", "redirects"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON summary missing %q field", key)
		}
	}
}
