// Command daeload is the load generator for a daed server. It drives
// thousands of concurrent compile/simulate requests with a seeded,
// reproducible mix of hot keys (repeat requests that should be served from
// the artifact store or collapsed onto in-flight executions), cold keys
// (distinct configurations that must execute), client cancellations, and
// injected faults, then reports throughput, latency percentiles, and the
// singleflight collapse ratio.
//
// Every request is accounted for: the run fails if any request is lost —
// the sum of ok + rejected(429) + canceled + failed must equal -n.
//
// -server accepts a comma-separated list of nodes; requests then route
// through the failover-aware cluster client: 429 admission sheds are slept
// out per the server's Retry-After hint (with seeded jitter) and re-issued
// — counted as sheds and retries, not losses — and node deaths mid-run
// cost failovers, not accepted requests. A request is "rejected" only when
// the shed budget is exhausted.
//
// A membership-churn window (-churn from-until, request indices) marks the
// stretch of the run during which an operator is concurrently joining or
// removing cluster nodes; those requests are reported as their own column
// (issued/ok) so a drill can assert that churn cost zero accepted requests.
// At exit the summary also scrapes the cluster's self-healing counters —
// repair pushes and drops, read-repairs, warmup streams, drain handoffs —
// summed across every reachable member.
//
// Usage:
//
//	daeload -server http://host:port[,http://host2:port] [-n 2000] [-c 128]
//	        [-apps CG,FFT,LibQ] [-hot 0.9] [-cancel 0] [-inject 0]
//	        [-compile 0.05] [-tenants 4] [-seed 1] [-timeout-ms 120000]
//	        [-churn from-until] [-attempt-timeout d] [-json file]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"dae/internal/daed"
	"dae/internal/daed/client"
	"dae/internal/fault"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// request is one precomputed unit of load. The whole schedule is derived
// from -seed before any traffic flows, so a run is reproducible.
type request struct {
	sim     *daed.SimulateRequest
	comp    *daed.CompileRequest
	tenant  string
	cancelD time.Duration // > 0: cancel the request after this long
}

// result classifies one completed request.
type result struct {
	outcome   string // ok, rejected, canceled, failed
	storeHit  bool
	collapsed bool
	degraded  bool
	churn     bool // issued inside the membership-churn window
	latencyMs float64
}

// summary is the machine-readable report (-json).
type summary struct {
	Requests   int     `json:"requests"`
	Concurrent int     `json:"concurrent"`
	OK         int     `json:"ok"`
	StoreHits  int     `json:"store_hits"`
	Collapsed  int     `json:"collapsed"`
	Degraded   int     `json:"degraded"`
	Rejected   int     `json:"rejected_429"`
	Canceled   int     `json:"canceled"`
	Failed     int     `json:"failed"`
	WallSec    float64 `json:"wall_seconds"`
	Throughput float64 `json:"requests_per_second"`
	P50Ms      float64 `json:"latency_p50_ms"`
	P99Ms      float64 `json:"latency_p99_ms"`
	// Sheds/Retries/Failovers come from the cluster client: 429s slept out
	// and re-issued, and node switches forced by failures. They are
	// resilience work, not request outcomes — the outcome columns above
	// still account for every request exactly once.
	Sheds     int64 `json:"sheds"`
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	Redirects int64 `json:"redirects"`
	// ChurnIssued/ChurnOK account for the requests issued inside the
	// -churn window — the stretch where membership was changing under the
	// load. ChurnOK == ChurnIssued - (rejected/canceled inside the window)
	// is the zero-lost-under-churn check in drill form.
	ChurnIssued int `json:"churn_issued,omitempty"`
	ChurnOK     int `json:"churn_ok,omitempty"`
	// Self-healing counters scraped from every reachable member at exit.
	RepairPushed  int64 `json:"repair_pushed"`
	RepairDropped int64 `json:"repair_dropped"`
	ReadRepairs   int64 `json:"read_repairs"`
	Warmed        int64 `json:"warmed"`
	HandedOff     int64 `json:"handed_off"`
	// Executions is the server-side pipeline execution count over the run;
	// CollapseRatio is successful requests per execution — how much work
	// the store and singleflight absorbed.
	Executions    int64   `json:"server_executions"`
	CollapseRatio float64 `json:"collapse_ratio"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("daeload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "", "daed base URL(s), comma-separated for a cluster (required)")
	n := fs.Int("n", 2000, "total requests to issue")
	conc := fs.Int("c", 128, "concurrent in-flight requests")
	appsFlag := fs.String("apps", "CG,FFT,LibQ", "comma-separated benchmark mix")
	hot := fs.Float64("hot", 0.9, "fraction of requests on hot keys (default configuration, shared by all)")
	cancelFrac := fs.Float64("cancel", 0, "fraction of requests canceled client-side mid-flight")
	injectFrac := fs.Float64("inject", 0, "fraction of requests carrying an injected access fault (chaos tenants)")
	compileFrac := fs.Float64("compile", 0.05, "fraction of requests hitting /v1/compile instead of /v1/simulate")
	tenants := fs.Int("tenants", 4, "number of load tenants to spread requests across")
	seed := fs.Int64("seed", 1, "PRNG seed for the request schedule")
	timeoutMs := fs.Int64("timeout-ms", 120000, "per-request timeout budget sent to the server")
	churn := fs.String("churn", "", "membership-churn window as request indices, e.g. 500-1500")
	attemptTimeout := fs.Duration("attempt-timeout", 0, "per-attempt budget before failing over off a hung node (0 = none)")
	jsonOut := fs.String("json", "", "also write the summary as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	churnFrom, churnUntil := -1, -1
	if *churn != "" {
		if _, err := fmt.Sscanf(*churn, "%d-%d", &churnFrom, &churnUntil); err != nil || churnFrom < 0 || churnUntil <= churnFrom {
			fmt.Fprintf(stderr, "daeload: bad -churn window %q (want from-until, from < until)\n", *churn)
			return 2
		}
	}
	if *server == "" {
		fmt.Fprintln(stderr, "daeload: -server is required")
		return 2
	}
	if *n <= 0 || *conc <= 0 || *tenants <= 0 {
		fmt.Fprintln(stderr, "daeload: -n, -c and -tenants must be positive")
		return 2
	}
	apps := strings.Split(*appsFlag, ",")
	for i := range apps {
		apps[i] = strings.TrimSpace(apps[i])
	}
	var nodes []string
	for _, u := range strings.Split(*server, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, strings.TrimRight(u, "/"))
		}
	}
	cl := client.New(client.Config{Nodes: nodes, BackoffSeed: uint64(*seed), AttemptTimeout: *attemptTimeout})

	// Build the whole schedule up front from the seed: the same flags
	// always generate the same traffic.
	rng := rand.New(rand.NewSource(*seed))
	reqs := make([]request, *n)
	for i := range reqs {
		app := apps[rng.Intn(len(apps))]
		r := request{tenant: fmt.Sprintf("load-%d", rng.Intn(*tenants))}
		switch {
		case rng.Float64() < *compileFrac:
			r.comp = &daed.CompileRequest{App: app, TimeoutMs: *timeoutMs}
		default:
			sim := &daed.SimulateRequest{App: app, TimeoutMs: *timeoutMs}
			if rng.Float64() >= *hot {
				// Cold key: a distinct core count forces a distinct content
				// key (it changes the trace-config fingerprint).
				sim.Cores = 2 + rng.Intn(6)
			}
			if rng.Float64() < *injectFrac {
				sim.Inject = fmt.Sprintf("access-phase,%s,compiler-dae,,trap!", app)
				// Chaos tenants keep injected poison away from the load
				// tenants' quarantine ledgers.
				r.tenant = fmt.Sprintf("chaos-%d", rng.Intn(*tenants))
			}
			r.sim = sim
		}
		if r.sim != nil && rng.Float64() < *cancelFrac {
			r.cancelD = time.Duration(1+rng.Intn(25)) * time.Millisecond
		}
		reqs[i] = r
	}

	results := make([]result, *n)
	var wg sync.WaitGroup
	idx := make(chan int)
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = issue(ctx, cl, reqs[i])
				results[i].churn = i >= churnFrom && i < churnUntil
			}
		}()
	}
	for i := 0; i < *n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
		}
	}
	close(idx)
	wg.Wait()
	wall := time.Since(start)

	sum := summarize(results, *conc, wall)
	c := cl.Counters()
	sum.Sheds, sum.Retries, sum.Failovers, sum.Redirects = c.Sheds, c.Retries, c.Failovers, c.Redirects
	scrapeCluster(ctx, cl, sum)
	report(stdout, *server, sum)
	if *jsonOut != "" {
		b, _ := json.MarshalIndent(sum, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "daeload:", err)
			return 1
		}
	}
	if lost := *n - (sum.OK + sum.Rejected + sum.Canceled + sum.Failed); lost != 0 {
		fmt.Fprintf(stderr, "daeload: %d request(s) lost (unaccounted for)\n", lost)
		return 1
	}
	if sum.Failed > 0 {
		fmt.Fprintf(stderr, "daeload: %d request(s) failed\n", sum.Failed)
		return 1
	}
	return 0
}

// issue fires one scheduled request through the cluster client and
// classifies the outcome. A 429 surfacing here means the client already
// slept out the shed budget — only then does it count as rejected.
func issue(ctx context.Context, cl *client.Cluster, r request) result {
	if r.cancelD > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cancelD)
		defer cancel()
	}
	start := time.Now()
	var (
		err error
		res result
	)
	if r.comp != nil {
		var resp *daed.CompileResponse
		resp, err = cl.Compile(ctx, r.tenant, r.comp)
		if err == nil {
			res.storeHit, res.collapsed = resp.CacheHit, resp.Collapsed
		}
	} else {
		var resp *daed.SimulateResponse
		resp, err = cl.Simulate(ctx, r.tenant, r.sim)
		if err == nil {
			res.storeHit, res.collapsed, res.degraded = resp.CacheHit, resp.Collapsed, resp.Degraded
		}
	}
	res.latencyMs = float64(time.Since(start)) / float64(time.Millisecond)
	var re *daed.RemoteError
	switch {
	case err == nil:
		res.outcome = "ok"
	case errors.As(err, &re) && re.Saturated():
		res.outcome = "rejected"
	case r.cancelD > 0 && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, fault.ErrTimeout)):
		res.outcome = "canceled"
	default:
		res.outcome = "failed"
	}
	return res
}

func summarize(results []result, conc int, wall time.Duration) *summary {
	sum := &summary{Requests: len(results), Concurrent: conc, WallSec: wall.Seconds()}
	var lat []float64
	for _, r := range results {
		if r.churn {
			sum.ChurnIssued++
		}
		switch r.outcome {
		case "ok":
			sum.OK++
			if r.storeHit {
				sum.StoreHits++
			}
			if r.collapsed {
				sum.Collapsed++
			}
			if r.degraded {
				sum.Degraded++
			}
			if r.churn {
				sum.ChurnOK++
			}
			lat = append(lat, r.latencyMs)
		case "rejected":
			sum.Rejected++
		case "canceled":
			sum.Canceled++
		default:
			sum.Failed++
		}
	}
	if sum.WallSec > 0 {
		sum.Throughput = float64(sum.Requests) / sum.WallSec
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		sum.P50Ms = lat[len(lat)/2]
		sum.P99Ms = lat[min(len(lat)-1, len(lat)*99/100)]
	}
	return sum
}

// scrapeCluster sums server-side counters — executions for the collapse
// ratio, and the self-healing counters — across every reachable member.
// Unreachable members (a node killed mid-drill) are simply absent.
func scrapeCluster(ctx context.Context, cl *client.Cluster, sum *summary) {
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for _, st := range cl.StatsAll(sctx) {
		sum.Executions += st.Executions
		sum.RepairPushed += st.RepairPushed
		sum.RepairDropped += st.RepairDropped
		sum.ReadRepairs += st.ReadRepairs
		sum.Warmed += st.Warmed
		sum.HandedOff += st.HandedOff
	}
	if sum.Executions > 0 {
		sum.CollapseRatio = float64(sum.OK) / float64(sum.Executions)
	}
}

func report(w io.Writer, server string, s *summary) {
	fmt.Fprintf(w, "daeload: %d requests (%d concurrent) in %.2fs against %s — %.1f req/s\n",
		s.Requests, s.Concurrent, s.WallSec, server, s.Throughput)
	fmt.Fprintf(w, "  ok %d (store-hits %d, collapsed %d, degraded %d)  rejected(429) %d  canceled %d  failed %d\n",
		s.OK, s.StoreHits, s.Collapsed, s.Degraded, s.Rejected, s.Canceled, s.Failed)
	fmt.Fprintf(w, "  sheds %d  retries %d  failovers %d  redirects %d\n", s.Sheds, s.Retries, s.Failovers, s.Redirects)
	if s.ChurnIssued > 0 {
		fmt.Fprintf(w, "  churn-window %d issued, %d ok\n", s.ChurnIssued, s.ChurnOK)
	}
	fmt.Fprintf(w, "  latency p50 %.2fms  p99 %.2fms\n", s.P50Ms, s.P99Ms)
	if s.Executions > 0 {
		fmt.Fprintf(w, "  server executions %d — singleflight/store collapse %.1fx\n",
			s.Executions, s.CollapseRatio)
	}
	if s.RepairPushed+s.RepairDropped+s.ReadRepairs+s.Warmed+s.HandedOff > 0 {
		fmt.Fprintf(w, "  self-healing: repair-pushed %d  repair-dropped %d  read-repairs %d  warmed %d  handed-off %d\n",
			s.RepairPushed, s.RepairDropped, s.ReadRepairs, s.Warmed, s.HandedOff)
	}
}
