// Command daerun executes one evaluation benchmark under the simulated DAE
// runtime and prints time/energy/EDP for the coupled, manual-DAE, and
// compiler-DAE versions across the frequency policies.
//
// Usage:
//
//	daerun [-cores 4] [-zero-latency] [LU|Cholesky|FFT|LBM|LibQ|Cigar|CG]
package main

import (
	"flag"
	"fmt"
	"os"

	"dae/internal/bench"
	daepass "dae/internal/dae"
	"dae/internal/dvfs"
	"dae/internal/eval"
	"dae/internal/rt"
)

func main() {
	cores := flag.Int("cores", 4, "number of simulated cores")
	zeroLat := flag.Bool("zero-latency", false, "assume instantaneous DVFS transitions (future hardware, paper sec. 6.1)")
	refine := flag.Bool("refine", false, "apply profile-guided prefetch pruning to the compiler-generated access versions")
	traceOut := flag.String("trace-out", "", "save the compiler-DAE trace as JSON to this file")
	jobs := flag.Int("j", 0, "max concurrent trace collections (0 = GOMAXPROCS); the three versions trace in parallel")
	cacheDir := flag.String("cache-dir", "", "persist collected traces in this directory and reuse them across runs")
	flag.Parse()

	name := "LU"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
	}
	app, err := bench.AppByName(name)
	if err != nil {
		fatal(err)
	}

	cfg := rt.DefaultTraceConfig()
	cfg.Cores = *cores
	fmt.Printf("tracing %s on %d cores (coupled, manual DAE, compiler DAE)...\n", app.Name, cfg.Cores)
	opts := eval.CollectOptions{Workers: *jobs}
	if *cacheDir != "" {
		opts.Cache = eval.NewTraceCache(*cacheDir)
	}
	if *refine {
		opts.Refine = &eval.RefineSpec{Options: daepass.DefaultRefine(), PerTask: 4}
	}
	data, err := eval.CollectWith(app, cfg, opts)
	if err != nil {
		fatal(err)
	}

	m := rt.DefaultMachine()
	if *zeroLat {
		m.DVFS = dvfs.Ideal()
	}

	base := rt.Evaluate(data.CAE, m, rt.PolicyFixed)
	fmt.Printf("\n%-28s %10s %10s %12s %8s %8s\n", "configuration", "time(ms)", "energy(J)", "EDP(mJ*s)", "T/Tbase", "EDP/base")
	show := func(label string, met rt.Metrics) {
		fmt.Printf("%-28s %10.4f %10.4f %12.6f %8.3f %8.3f\n",
			label, met.Time*1e3, met.Energy, met.EDP*1e3, met.Time/base.Time, met.EDP/base.EDP)
	}
	show("CAE (max f.)", base)
	show("CAE (optimal f.)", rt.Evaluate(data.CAE, m, rt.PolicyOptimalEDP))
	show("Manual DAE (min/max f.)", rt.Evaluate(data.Manual, m, rt.PolicyMinMax))
	show("Manual DAE (optimal f.)", rt.Evaluate(data.Manual, m, rt.PolicyOptimalEDP))
	show("Compiler DAE (min/max f.)", rt.Evaluate(data.Auto, m, rt.PolicyMinMax))
	show("Compiler DAE (optimal f.)", rt.Evaluate(data.Auto, m, rt.PolicyOptimalEDP))

	met := rt.Evaluate(data.Auto, m, rt.PolicyMinMax)
	fmt.Printf("\ncompiler DAE: %d tasks, TA=%.2f%%, mean access phase %.2f us, %d DVFS switches\n",
		met.Tasks, met.TAFraction()*100, met.MeanAccessSeconds()*1e6, met.Transitions)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rt.SaveTrace(f, data.Auto); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	fmt.Print("\n", eval.FormatStrategies([]*eval.AppData{data}))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daerun:", err)
	os.Exit(1)
}
