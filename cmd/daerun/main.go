// Command daerun executes one evaluation benchmark under the simulated DAE
// runtime and prints time/energy/EDP for the coupled, manual-DAE, and
// compiler-DAE versions across the frequency policies.
//
// The pipeline is hardened: -timeout bounds the whole invocation,
// -run-timeout bounds each of the three version collections, and -max-steps
// bounds each simulated task's interpreter steps. A failed run — trap,
// budget, timeout, panic — produces a per-run failure summary (app, run
// kind, fault class; -v adds captured panic stacks) on stderr and a nonzero
// exit.
//
// -degrade selects the runtime supervision mode: "access" (default)
// contains access-phase faults by quarantining the task type's access
// variant and re-running it coupled at the fixed frequency; "full"
// additionally contains execute-phase faults to the failing task; "off"
// aborts the run on any fault. A run that completes degraded prints a
// summary naming the quarantined task types and exits with status 3.
//
// Exit status: 0 clean, 1 failed runs, 2 usage, 3 completed degraded.
//
// Usage:
//
//	daerun [-cores 4] [-zero-latency] [-timeout d] [-run-timeout d]
//	       [-max-steps n] [-degrade off|access|full] [-inject rules] [-v]
//	       [-engine bytecode|tree] [LU|Cholesky|FFT|LBM|LibQ|Cigar|CG]
//
// -engine selects the interpreter execution engine: the register-bytecode VM
// (default) or the compiled-op oracle ("tree"); both produce byte-identical
// traces.
//
// -server runs the evaluation remotely against a daed server instead of
// simulating locally: the report is byte-identical to a local run of the
// same flags (one formatter renders both), but a warm server answers from
// its content-addressed artifact store without re-simulating. -tenant names
// the requesting tenant for the server's per-tenant quarantine. -server
// accepts a comma-separated node list; requests then route through the
// failover-aware cluster client, so a dead or draining node costs a
// failover, not the run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dae/internal/bench"
	daepass "dae/internal/dae"
	"dae/internal/daed"
	"dae/internal/daed/client"
	"dae/internal/dvfs"
	"dae/internal/eval"
	"dae/internal/fault"
	"dae/internal/fault/inject"
	"dae/internal/interp"
	"dae/internal/rt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the exit paths are testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("daerun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cores := fs.Int("cores", 4, "number of simulated cores")
	zeroLat := fs.Bool("zero-latency", false, "assume instantaneous DVFS transitions (future hardware, paper sec. 6.1)")
	refine := fs.Bool("refine", false, "apply profile-guided prefetch pruning to the compiler-generated access versions")
	traceOut := fs.String("trace-out", "", "save the compiler-DAE trace as JSON to this file")
	jobs := fs.Int("j", 0, "max concurrent trace collections (0 = GOMAXPROCS); the three versions trace in parallel")
	cacheDir := fs.String("cache-dir", "", "persist collected traces in this directory and reuse them across runs")
	timeout := fs.Duration("timeout", 0, "abort the whole invocation after this duration (0 = no limit)")
	runTimeout := fs.Duration("run-timeout", 0, "abort any single version's collection after this duration (0 = no limit)")
	maxSteps := fs.Int64("max-steps", 0, "abort any simulated task after this many interpreter steps (0 = no limit)")
	degrade := fs.String("degrade", "access", "runtime supervision mode: off (abort on fault), access (quarantine faulting access variants), full (also contain execute faults)")
	injectSpec := fs.String("inject", "", "fault-injection rules, \"site,app,kind,task,mode[,trap]\" separated by ';' (testing)")
	verbose := fs.Bool("v", false, "verbose failure reports (include captured panic stacks)")
	engine := fs.String("engine", "bytecode", "interpreter execution engine: bytecode (register VM) or tree (compiled-op oracle)")
	serverURL := fs.String("server", "", "evaluate remotely against daed at this base URL; comma-separate for a cluster")
	tenant := fs.String("tenant", "", "tenant identity sent to the daed server (with -server)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "daerun:", err)
		return 1
	}
	degradeMode, err := rt.ParseDegradeMode(*degrade)
	if err != nil {
		fmt.Fprintln(stderr, "daerun:", err)
		return 2
	}
	injectRules, err := inject.ParseRules(*injectSpec)
	if err != nil {
		fmt.Fprintln(stderr, "daerun:", err)
		return 2
	}
	engineKind, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "daerun:", err)
		return 2
	}

	name := "LU"
	if fs.NArg() > 0 {
		name = fs.Arg(0)
	}
	app, err := bench.AppByName(name)
	if err != nil {
		return fail(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serverURL != "" {
		for name, set := range map[string]bool{
			"-j": *jobs != 0, "-cache-dir": *cacheDir != "",
			"-run-timeout": *runTimeout != 0, "-trace-out": *traceOut != "",
		} {
			if set {
				fmt.Fprintf(stderr, "daerun: %s configures the local simulation; it has no meaning with -server\n", name)
				return 2
			}
		}
		req := &daed.SimulateRequest{
			App:         app.Name,
			Cores:       *cores,
			ZeroLatency: *zeroLat,
			Refine:      *refine,
			MaxSteps:    *maxSteps,
			Degrade:     *degrade,
			Engine:      *engine,
			TimeoutMs:   timeout.Milliseconds(),
			Inject:      *injectSpec,
		}
		return runRemote(ctx, *serverURL, *tenant, req, stdout, stderr)
	}

	cfg := rt.DefaultTraceConfig()
	cfg.Cores = *cores
	cfg.MaxSteps = *maxSteps
	cfg.Degrade = degradeMode
	cfg.Engine = engineKind
	fmt.Fprintf(stdout, "tracing %s on %d cores (coupled, manual DAE, compiler DAE)...\n", app.Name, cfg.Cores)
	opts := eval.CollectOptions{Workers: *jobs, RunTimeout: *runTimeout}
	if *cacheDir != "" {
		opts.Cache = eval.NewTraceCache(*cacheDir)
	}
	if *refine {
		opts.Refine = &eval.RefineSpec{Options: daepass.DefaultRefine(), PerTask: 4}
	}
	if len(injectRules) > 0 {
		in := inject.New(injectRules...)
		opts.Inject = in.Hook()
		opts.InjectPhase = in.PhaseFunc()
	}
	data, err := eval.CollectWith(ctx, app, cfg, opts)
	if err != nil {
		s := eval.FormatFailures(err)
		if *verbose {
			s = eval.FormatFailuresVerbose(err)
		}
		if s != "" {
			fmt.Fprintf(stderr, "daerun: %s", s)
			if !strings.HasSuffix(s, "\n") {
				fmt.Fprintln(stderr)
			}
			return 1
		}
		return fail(err)
	}

	m := rt.DefaultMachine()
	if *zeroLat {
		m.DVFS = dvfs.Ideal()
	}

	fmt.Fprint(stdout, eval.FormatRunReport(data, m))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		if err := rt.SaveTrace(f, data.Auto); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *traceOut)
	}
	if rows := eval.DegradationRows([]*eval.AppData{data}); len(rows) > 0 {
		fmt.Fprintf(stderr, "daerun: %s", eval.FormatDegradation(rows))
		return 3
	}
	return 0
}

// runRemote evaluates the benchmark against a daed server or cluster. The
// printed report is byte-identical to the local simulation's: the server
// renders with the same eval.FormatRunReport the local path uses.
func runRemote(ctx context.Context, base, tenant string, req *daed.SimulateRequest, stdout, stderr io.Writer) int {
	cl := client.New(client.Config{Nodes: splitNodes(base)})
	fmt.Fprintf(stdout, "tracing %s on %d cores (coupled, manual DAE, compiler DAE)...\n", req.App, coresOrDefault(req.Cores))
	resp, err := cl.Simulate(ctx, tenant, req)
	if err != nil {
		var re *daed.RemoteError
		if errors.As(err, &re) && re.Saturated() {
			fmt.Fprintf(stderr, "daerun: server saturated, retry after %v: %v\n", re.RetryAfter, err)
			return 1
		}
		if errors.Is(err, fault.ErrTimeout) {
			fmt.Fprintf(stderr, "daerun: remote evaluation timed out: %v\n", err)
			return 1
		}
		fmt.Fprintln(stderr, "daerun:", err)
		return 1
	}
	fmt.Fprint(stdout, resp.Report)
	if resp.Degraded {
		tasks := make([]string, 0, len(resp.Quarantined))
		for task, kind := range resp.Quarantined {
			tasks = append(tasks, fmt.Sprintf("%s (%s)", task, kind))
		}
		sort.Strings(tasks)
		fmt.Fprintf(stderr, "daerun: completed degraded: quarantined task types: %s\n",
			strings.Join(tasks, ", "))
		return 3
	}
	return 0
}

// splitNodes parses a comma-separated -server value into a node list.
func splitNodes(s string) []string {
	var nodes []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, strings.TrimRight(u, "/"))
		}
	}
	return nodes
}

// coresOrDefault mirrors the server's defaulting for the progress line.
func coresOrDefault(n int) int {
	if n <= 0 {
		return rt.DefaultTraceConfig().Cores
	}
	return n
}
