package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunUnknownBenchmark(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"NoSuchApp"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "NoSuchApp") {
		t.Errorf("stderr does not name the unknown benchmark: %q", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunStepBudgetFailureSummary: an absurdly small step budget fails the
// collection with the per-run summary on stderr and exit status 1. This is
// the CLI surface of the fault taxonomy: app, run kind, and fault class are
// all named.
func TestRunStepBudgetFailureSummary(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-max-steps", "1", "LibQ"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	msg := errb.String()
	for _, want := range []string{"run(s) failed", "LibQ", "step-budget"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure summary missing %q:\n%s", want, msg)
		}
	}
}

func TestRunSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("collects a full benchmark")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"LibQ"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"configuration", "Compiler DAE", "LibQ"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
