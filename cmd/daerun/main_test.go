package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"dae/internal/daed"
)

func TestRunUnknownBenchmark(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"NoSuchApp"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "NoSuchApp") {
		t.Errorf("stderr does not name the unknown benchmark: %q", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunStepBudgetFailureSummary: an absurdly small step budget fails the
// collection with the per-run summary on stderr and exit status 1. This is
// the CLI surface of the fault taxonomy: app, run kind, and fault class are
// all named.
func TestRunStepBudgetFailureSummary(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-max-steps", "1", "LibQ"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	msg := errb.String()
	for _, want := range []string{"run(s) failed", "LibQ", "step-budget"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure summary missing %q:\n%s", want, msg)
		}
	}
}

func TestRunSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("collects a full benchmark")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"LibQ"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"configuration", "Compiler DAE", "LibQ"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestExitCodes is the table-driven contract for daerun's exit statuses:
// 0 clean, 1 failed runs, 2 usage, 3 completed degraded.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		want   int
		stderr []string // substrings that must appear on stderr
		stdout []string // substrings that must appear on stdout
		heavy  bool     // collects a full benchmark; skipped under -short
	}{
		{name: "usage-bad-flag", args: []string{"-no-such-flag"}, want: 2},
		{name: "usage-bad-degrade", args: []string{"-degrade", "sometimes", "LibQ"}, want: 2,
			stderr: []string{"degrade"}},
		{name: "usage-bad-inject", args: []string{"-inject", "nonsense", "LibQ"}, want: 2,
			stderr: []string{"inject"}},
		{name: "fault-budget", args: []string{"-max-steps", "1", "LibQ"}, want: 1,
			stderr: []string{"run(s) failed", "step-budget"}},
		{name: "clean", args: []string{"LibQ"}, want: 0, heavy: true,
			stdout: []string{"Compiler DAE"}},
		{name: "degraded-access-fault", heavy: true,
			args: []string{"-inject", "access-phase,LibQ,compiler-dae,,trap!", "LibQ"}, want: 3,
			stderr: []string{"completed degraded", "compiler-dae", "trap"}},
		{name: "exec-fault-not-masked", heavy: true,
			args: []string{"-degrade", "full", "-inject", "execute-phase,LibQ,coupled,,trap!", "LibQ"}, want: 1,
			stderr: []string{"run(s) failed", "coupled", "trap"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("collects a full benchmark")
			}
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != tc.want {
				t.Fatalf("exit code = %d, want %d; stderr:\n%s", code, tc.want, errb.String())
			}
			for _, want := range tc.stderr {
				if !strings.Contains(errb.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, errb.String())
				}
			}
			for _, want := range tc.stdout {
				if !strings.Contains(out.String(), want) {
					t.Errorf("stdout missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

// TestRemoteByteIdentical is the remote-mode acceptance test: daerun
// -server against a daed instance prints stdout byte-identical to the same
// local invocation — the server and the CLI render through one formatter
// over one trace semantics.
func TestRemoteByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("collects a full benchmark twice")
	}
	srv := daed.New(daed.Config{Workers: 2, Dir: t.TempDir()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var local, localErr bytes.Buffer
	if code := run([]string{"CG"}, &local, &localErr); code != 0 {
		t.Fatalf("local run exit = %d; stderr:\n%s", code, localErr.String())
	}
	var remote, remoteErr bytes.Buffer
	if code := run([]string{"-server", ts.URL, "CG"}, &remote, &remoteErr); code != 0 {
		t.Fatalf("remote run exit = %d; stderr:\n%s", code, remoteErr.String())
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Fatalf("remote stdout differs from local:\nlocal:\n%q\nremote:\n%q",
			local.String(), remote.String())
	}

	// A second remote run answers from the warm store, still identically.
	var warm, warmErr bytes.Buffer
	if code := run([]string{"-server", ts.URL, "CG"}, &warm, &warmErr); code != 0 {
		t.Fatalf("warm remote run exit = %d; stderr:\n%s", code, warmErr.String())
	}
	if !bytes.Equal(local.Bytes(), warm.Bytes()) {
		t.Fatal("warm remote stdout differs from local")
	}
}

// TestRemoteRejectsLocalFlags: local-simulation flags have no remote
// meaning and are usage errors with -server.
func TestRemoteRejectsLocalFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-server", "http://localhost:1", "-cache-dir", "/tmp/x", "CG"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-cache-dir") {
		t.Errorf("stderr does not name the offending flag: %q", errb.String())
	}
}

// TestRemoteDegradedExit: a remote run that completes degraded keeps the
// CLI's exit-status contract (3) and names the quarantined task types.
func TestRemoteDegradedExit(t *testing.T) {
	if testing.Short() {
		t.Skip("collects a full benchmark")
	}
	srv := daed.New(daed.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out, errb bytes.Buffer
	code := run([]string{"-server", ts.URL, "-inject", "access-phase,CG,compiler-dae,,trap!", "CG"}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3; stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"completed degraded", "trap"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
	}
}

// TestVerbosePanicStack: under -v, an injected compile-stage panic prints
// the captured stack after the failure summary.
func TestVerbosePanicStack(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-v", "-inject", "compile,LibQ,,,panic", "LibQ"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	msg := errb.String()
	for _, want := range []string{"run(s) failed", "panic", "--- stack of"} {
		if !strings.Contains(msg, want) {
			t.Errorf("verbose failure report missing %q:\n%s", want, msg)
		}
	}
}
